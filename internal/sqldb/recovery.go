package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"ecfd/internal/relation"
)

// WALOptions configures a durable database.
type WALOptions struct {
	// Dir is the directory holding WAL and snapshot files.
	Dir string
	// FS overrides the filesystem; nil means the OS filesystem. The
	// fault-injection tests pass a MemFS here.
	FS WALFS
	// Fsync selects the flush policy (always / batched / off).
	Fsync FsyncPolicy
	// FsyncEvery is the batched policy's interval in commit units;
	// 0 means the default (32).
	FsyncEvery int
	// CheckpointBytes triggers a snapshot + WAL rotation when the WAL
	// grows past this size; 0 disables automatic checkpoints
	// (Checkpoint() remains available).
	CheckpointBytes int64
}

// RecoveryStats describes what Open had to do; tests and operators
// read it to confirm a recovery path actually ran.
type RecoveryStats struct {
	// Gen is the WAL generation now receiving appends.
	Gen uint64
	// SnapshotGen is the snapshot generation the catalog was loaded
	// from; 0 when recovery started from an empty catalog.
	SnapshotGen uint64
	// FellBack reports that the newest snapshot was missing or damaged
	// and an older generation was used instead.
	FellBack bool
	// UnitsReplayed counts the WAL commit units applied on top of the
	// snapshot.
	UnitsReplayed int
	// TornTail reports that a torn final record was truncated away.
	TornTail bool
}

// RecoveryStats returns the stats recorded by Open. No lock: the
// stats are written once during Open, before the DB is shared.
func (db *DB) RecoveryStats() RecoveryStats {
	return db.recov
}

// restoreTable is the mutable shape recovery builds a table in before
// the state freezes into epoch 1: plain rows and index definitions,
// no derived structures (those rebuild lazily on first use). Replay
// runs single-threaded before the DB is shared, so in-place mutation
// here is safe — the copy-on-write discipline starts at the epoch
// boundary, not before it.
type restoreTable struct {
	t       *Table
	rows    []relation.Tuple
	indexes []*Index
}

// restoreState is the whole catalog mid-recovery, keyed by lowered
// table name.
type restoreState struct {
	tables map[string]*restoreTable
}

func newRestoreState() *restoreState {
	return &restoreState{tables: make(map[string]*restoreTable)}
}

func (rs *restoreState) table(name string) (*restoreTable, error) {
	rt, ok := rs.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("no table %s", name)
	}
	return rt, nil
}

// finishRestore freezes the replayed state into the DB's epoch 1.
// The epoch NewDB created is still private, so it is populated in
// place; every derived structure starts empty and builds on demand.
func (db *DB) finishRestore(rs *restoreState) {
	ep := db.curW
	for key, rt := range rs.tables {
		ep.tables[key] = rt.t
		slots := make([]indexSlot, len(rt.indexes))
		for i, idx := range rt.indexes {
			slots[i] = indexSlot{idx: idx, data: &indexData{}}
		}
		ep.tds[rt.t] = &tableData{rows: rt.rows, cols: &colData{}, indexes: slots}
	}
}

// Open opens (or creates) a durable database backed by opts.Dir:
// it loads the newest intact snapshot, replays the WAL tail on top,
// and leaves the WAL open for appends. Recovery tolerates exactly the
// damage a crash can cause and nothing more:
//
//   - a torn final record (the append interrupted by the crash) is
//     truncated away and recovery continues;
//   - a corrupt record with more data after it cannot be explained by
//     a crash — that is silent corruption, and Open fails loudly with
//     the file and offset rather than guess;
//   - a missing or damaged snapshot falls back to the previous
//     generation, whose snapshot plus both WAL files reproduce the
//     same state.
func Open(opts WALOptions) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("sql: Open: WAL directory required")
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("sql: Open: mkdir %s: %v", opts.Dir, err)
	}
	every := opts.FsyncEvery
	if every <= 0 {
		every = defaultFsyncEvery
	}
	db := NewDB()
	w := &walState{
		fs:        fs,
		dir:       opts.Dir,
		policy:    opts.Fsync,
		every:     every,
		ckpt:      opts.CheckpointBytes,
		replaying: true,
	}
	db.wal = w

	names, err := fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("sql: Open: read %s: %v", opts.Dir, err)
	}
	var snapGens, walGens []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			_ = fs.Remove(w.dir + "/" + name) // abandoned mid-checkpoint
			continue
		}
		gen, kind, ok := parseGenName(name)
		if !ok {
			continue
		}
		if kind == fileSnap {
			snapGens = append(snapGens, gen)
		} else {
			walGens = append(walGens, gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	// Load the newest snapshot that decodes; anything newer that does
	// not is a fallback.
	rs := newRestoreState()
	var chosen uint64
	loaded := false
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		data, err := fs.ReadFile(w.snapPath(g))
		if err == nil {
			var tables map[string]*restoreTable
			if tables, err = decodeSnapshot(data, g); err == nil {
				rs.tables = tables
				chosen, loaded = g, true
				db.recov.SnapshotGen = g
				if i != len(snapGens)-1 {
					db.recov.FellBack = true
				}
				break
			}
		}
		db.recov.FellBack = true
	}
	if !loaded && len(snapGens) > 0 {
		// Every snapshot is damaged; recovery from scratch needs the
		// full WAL history, which pruning only guarantees while a
		// snapshot covers it.
		if len(walGens) == 0 || walGens[0] != 1 {
			return nil, fmt.Errorf("sql: Open: no intact snapshot in %s and WAL history is incomplete", opts.Dir)
		}
	}

	// Replay WAL generations >= the snapshot's, oldest first. A gap —
	// a missing generation with a later one present — cannot be
	// produced by a crash and fails loudly.
	replayFrom := chosen
	if replayFrom == 0 {
		replayFrom = 1
	}
	var replay []uint64
	for _, g := range walGens {
		if g >= replayFrom {
			replay = append(replay, g)
		}
	}
	if len(replay) > 0 {
		if chosen > 0 && replay[0] != chosen && replay[len(replay)-1] > chosen {
			return nil, fmt.Errorf("sql: Open: WAL generation %d missing in %s (have %d..%d)",
				chosen, opts.Dir, replay[0], replay[len(replay)-1])
		}
		for i := 1; i < len(replay); i++ {
			if replay[i] != replay[i-1]+1 {
				return nil, fmt.Errorf("sql: Open: WAL generation %d missing in %s", replay[i-1]+1, opts.Dir)
			}
		}
	}
	currentGen := replayFrom
	if len(replay) > 0 {
		currentGen = replay[len(replay)-1]
	}
	var currentSize int64 = -1
	for _, g := range replay {
		size, err := db.replayWALFile(rs, g)
		if err != nil {
			return nil, err
		}
		if g == currentGen {
			currentSize = size
		}
	}
	db.finishRestore(rs)

	// Leave the current generation's WAL open for appends, creating it
	// (with its header) when absent or fully torn.
	if currentSize < int64(len(walFileMagic)) {
		f, err := w.newWALFile(currentGen)
		if err != nil {
			return nil, fmt.Errorf("sql: Open: %v", err)
		}
		w.f = f
		currentSize = int64(len(walFileMagic))
	} else {
		f, err := fs.OpenAppend(w.walPath(currentGen))
		if err != nil {
			return nil, fmt.Errorf("sql: Open: wal gen %d: %v", currentGen, err)
		}
		w.f = f
	}
	w.gen = currentGen
	w.size = currentSize
	// Everything on disk up to the valid size is durable by definition;
	// the group-commit ledger must start there or the first follower
	// would wait for bytes no sync will ever cover.
	w.gc.syncedTo = currentSize
	w.replaying = false
	db.recov.Gen = currentGen
	return db, nil
}

// Close flushes and detaches the WAL. The in-memory catalog stays
// queryable, but mutations are refused from here on.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	w := db.wal
	if w == nil || w.f == nil {
		return nil
	}
	var err error
	if db.roErr == nil {
		// Commits parked in the group-commit window must reach disk (or
		// fail loudly) before the file goes away.
		err = db.absorbPendings()
	}
	if err == nil && db.roErr == nil && w.unsynced > 0 {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if db.roErr == nil {
		db.roErr = fmt.Errorf("database closed")
	}
	return err
}

// replayWALFile applies one WAL file's units on top of the current
// catalog and returns the file's valid size — the offset past the last
// intact unit, with any torn tail already truncated off on disk.
// A missing file is not an error (a crash between snapshot rename and
// WAL creation leaves exactly that); the caller then starts the file
// fresh.
func (db *DB) replayWALFile(rs *restoreState, gen uint64) (int64, error) {
	w := db.wal
	path := w.walPath(gen)
	data, err := w.fs.ReadFile(path)
	if err != nil {
		return -1, nil
	}
	if len(data) < len(walFileMagic) {
		// The header write itself tore; there are no units to lose.
		db.recov.TornTail = true
		if err := w.fs.Truncate(path, 0); err != nil {
			return 0, fmt.Errorf("sql: Open: truncate torn %s: %v", path, err)
		}
		return 0, nil
	}
	if string(data[:len(walFileMagic)]) != walFileMagic {
		return 0, fmt.Errorf("sql: wal %s: bad magic", path)
	}
	off := len(walFileMagic)
	for off < len(data) {
		rest := len(data) - off
		if rest < walFrameSize {
			return db.truncateTorn(path, off)
		}
		ln := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if ln > maxWALRecord {
			if rest-walFrameSize < ln {
				return db.truncateTorn(path, off)
			}
			return 0, fmt.Errorf("sql: wal %s: corrupt record at offset %d: implausible length %d", path, off, ln)
		}
		if rest-walFrameSize < ln {
			return db.truncateTorn(path, off)
		}
		payload := data[off+walFrameSize : off+walFrameSize+ln]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+walFrameSize+ln == len(data) {
				// The final record: a torn tail, not corruption.
				return db.truncateTorn(path, off)
			}
			return 0, fmt.Errorf("sql: wal %s: corrupt record at offset %d: CRC mismatch with %d bytes following", path, off, len(data)-off-walFrameSize-ln)
		}
		if err := applyWALUnit(rs, payload); err != nil {
			return 0, fmt.Errorf("sql: wal %s: record at offset %d: %v", path, off, err)
		}
		db.recov.UnitsReplayed++
		off += walFrameSize + ln
	}
	return int64(off), nil
}

// truncateTorn drops a torn tail at offset off and reports the valid
// size.
func (db *DB) truncateTorn(path string, off int) (int64, error) {
	db.recov.TornTail = true
	if err := db.wal.fs.Truncate(path, int64(off)); err != nil {
		return 0, fmt.Errorf("sql: Open: truncate torn %s at %d: %v", path, off, err)
	}
	return int64(off), nil
}

// applyWALUnit re-applies one commit unit's operations to the restore
// state. Replay mutates rows in place — every tuple here was freshly
// decoded, so nothing is shared yet.
func applyWALUnit(rs *restoreState, payload []byte) error {
	d := &walDecoder{b: payload}
	for d.more() {
		if err := applyWALOp(rs, d); err != nil {
			return err
		}
	}
	return d.err
}

func applyWALOp(rs *restoreState, d *walDecoder) error {
	code := d.byte()
	switch code {
	case opInsert:
		rt, err := rs.table(d.str())
		if err != nil {
			return err
		}
		n := d.uint()
		if d.err != nil || n > uint64(len(d.b)) {
			return fmt.Errorf("implausible insert count %d", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			row := d.tuple()
			if d.err == nil {
				rt.rows = append(rt.rows, row)
			}
		}
	case opDelete:
		rt, err := rs.table(d.str())
		if err != nil {
			return err
		}
		n := d.uint()
		if d.err != nil || n > uint64(len(rt.rows)) {
			return fmt.Errorf("delete of %d rows from %d-row table", n, len(rt.rows))
		}
		pos := make([]int, n)
		for i := range pos {
			p := int(d.uint())
			if d.err == nil && (p >= len(rt.rows) || (i > 0 && p <= pos[i-1])) {
				return fmt.Errorf("delete position %d out of order or range", p)
			}
			pos[i] = p
		}
		if d.err != nil {
			return d.err
		}
		keep := rt.rows[:0:0]
		di := 0
		for ri, row := range rt.rows {
			if di < len(pos) && pos[di] == ri {
				di++
				continue
			}
			keep = append(keep, row)
		}
		rt.rows = keep
	case opUpdate:
		rt, err := rs.table(d.str())
		if err != nil {
			return err
		}
		t := rt.t
		nc := d.uint()
		if d.err != nil || nc > uint64(t.Schema.Width()) {
			return fmt.Errorf("update of %d columns in %d-column table", nc, t.Schema.Width())
		}
		cols := make([]int, nc)
		for i := range cols {
			c := int(d.uint())
			if d.err == nil && c >= t.Schema.Width() {
				return fmt.Errorf("update column %d out of range", c)
			}
			cols[i] = c
		}
		np := d.uint()
		if d.err != nil || np > uint64(len(rt.rows)) {
			return fmt.Errorf("update of %d rows in %d-row table", np, len(rt.rows))
		}
		pos := make([]int, np)
		vals := make([][]relation.Value, np)
		for i := range pos {
			p := int(d.uint())
			if d.err == nil && p >= len(rt.rows) {
				return fmt.Errorf("update position %d out of range", p)
			}
			pos[i] = p
			vals[i] = make([]relation.Value, nc)
			for j := range vals[i] {
				vals[i][j] = d.value()
			}
		}
		if d.err != nil {
			return d.err
		}
		for i, p := range pos {
			for j, c := range cols {
				rt.rows[p][c] = vals[i][j]
			}
		}
	case opTruncate:
		rt, err := rs.table(d.str())
		if err != nil {
			return err
		}
		rt.rows = rt.rows[:0]
	case opCreateTable:
		s := d.schema()
		if d.err != nil {
			return d.err
		}
		key := lowerName(s.Name)
		if _, ok := rs.tables[key]; ok {
			return fmt.Errorf("create of existing table %s", s.Name)
		}
		rs.tables[key] = &restoreTable{t: &Table{Name: s.Name, Schema: s}}
	case opDropTable:
		name := d.str()
		if d.err != nil {
			return d.err
		}
		key := lowerName(name)
		if _, ok := rs.tables[key]; !ok {
			return fmt.Errorf("drop of missing table %s", name)
		}
		delete(rs.tables, key)
	case opCreateIndex:
		name := d.str()
		rt, err := rs.table(d.str())
		if err != nil {
			return err
		}
		t := rt.t
		nc := d.uint()
		if d.err != nil || nc > uint64(t.Schema.Width()) {
			return fmt.Errorf("implausible index width %d", nc)
		}
		idx := &Index{Name: name}
		for i := uint64(0); i < nc; i++ {
			c := d.str()
			j := t.Schema.Index(c)
			if d.err == nil && j < 0 {
				return fmt.Errorf("index %s on missing column %s", name, c)
			}
			idx.Cols = append(idx.Cols, j)
		}
		if d.err != nil {
			return d.err
		}
		rt.indexes = append(rt.indexes, idx)
	case opLoadRelation:
		s := d.schema()
		if d.err != nil {
			return d.err
		}
		n := d.uint()
		if d.err != nil || n > uint64(len(d.b)) {
			return fmt.Errorf("implausible load count %d", n)
		}
		rows := make([]relation.Tuple, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			rows = append(rows, d.tuple())
		}
		if d.err != nil {
			return d.err
		}
		key := lowerName(s.Name)
		rt, ok := rs.tables[key]
		if !ok {
			rt = &restoreTable{t: &Table{Name: s.Name, Schema: s}}
			rs.tables[key] = rt
		}
		rt.rows = rows
	default:
		return fmt.Errorf("unknown operation code %d", code)
	}
	return d.err
}
