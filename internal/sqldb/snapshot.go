package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sort"

	"ecfd/internal/relation"
)

// Checkpoint snapshots.
//
// A snapshot file captures the whole catalog — every table's schema
// (with finite domains), rows and index definitions — at a generation
// boundary:
//
//	"ECFDSNP1" | uvarint generation | uvarint #tables |
//	  per table: schema, uvarint #rows, rows, uvarint #indexes,
//	             per index: name, uvarint #cols, column positions
//	| u32 CRC-32 (IEEE) of everything before it
//
// Generation g's snapshot holds the state at the moment WAL file g was
// created, so state(snap g) + replay(wal g) is always current — and
// because state(snap g) itself equals state(snap g-1) + replay(wal
// g-1), recovery can fall back one generation when snap g is missing
// or damaged, replaying wal g-1 then wal g. Checkpoint therefore keeps
// generations g and g-1 on disk and deletes anything older.
//
// The snapshot is written to a .tmp file, synced, renamed into place
// and the directory synced — a crash mid-checkpoint leaves either the
// old generation set or the new one, never a half-written snapshot
// under the final name (a leftover .tmp is deleted at open).

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snapshot", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016d.log", gen) }

func (w *walState) snapPath(gen uint64) string { return path.Join(w.dir, snapName(gen)) }
func (w *walState) walPath(gen uint64) string  { return path.Join(w.dir, walName(gen)) }

// Checkpoint forces a snapshot + WAL rotation now. It takes the
// catalog write lock, so it serializes with DML like any mutation.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return fmt.Errorf("sql: Checkpoint: database has no WAL")
	}
	if err := db.writable(); err != nil {
		return err
	}
	if err := db.checkpointLocked(); err != nil {
		db.roErr = fmt.Errorf("checkpoint: %v", err)
		return db.writable()
	}
	return nil
}

// checkpointLocked writes snapshot generation g+1, starts WAL file
// g+1, and prunes generations <= g-1. Callers hold db.mu (write); on
// error the caller degrades the DB to read-only — the old generation
// on disk is still complete, so nothing is lost, but a WAL file the
// rotation abandoned must not keep receiving appends.
func (db *DB) checkpointLocked() error {
	w := db.wal
	// Commits still parked in the group-commit window must hit disk
	// before their WAL file is superseded: the snapshot about to be
	// written includes their effects (they are in curW), so losing
	// their log bytes to rotation would be fine for THIS generation —
	// but a fallback to the previous generation replays the old WAL,
	// which must therefore be complete.
	if err := db.absorbPendings(); err != nil {
		return err
	}
	newGen := w.gen + 1

	payload := encodeSnapshot(db.curW, newGen)
	tmp := w.snapPath(newGen) + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("create %s: %v", tmp, err)
	}
	n, err := f.Write(payload)
	if err == nil && n < len(payload) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(payload))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %v", tmp, err)
	}
	if err := w.fs.Rename(tmp, w.snapPath(newGen)); err != nil {
		return fmt.Errorf("rename snapshot: %v", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("sync dir: %v", err)
	}

	nf, err := w.newWALFile(newGen)
	if err != nil {
		return err
	}
	if w.f != nil {
		_ = w.f.Close()
	}
	w.f = nf
	w.gen = newGen
	w.size = int64(len(walFileMagic))
	w.unsynced = 0
	// Fresh file: its synced header is all that exists, so the group
	// commit ledger restarts there.
	w.gc.syncedTo = w.size

	w.pruneGenerations(newGen)
	return nil
}

// newWALFile creates WAL file gen with its header, synced.
func (w *walState) newWALFile(gen uint64) (WALFile, error) {
	nf, err := w.fs.Create(w.walPath(gen))
	if err != nil {
		return nil, fmt.Errorf("create wal gen %d: %v", gen, err)
	}
	n, err := nf.Write([]byte(walFileMagic))
	if err == nil && n < len(walFileMagic) {
		err = fmt.Errorf("short write")
	}
	if err == nil {
		err = nf.Sync()
	}
	if err == nil {
		err = w.fs.SyncDir(w.dir)
	}
	if err != nil {
		_ = nf.Close()
		return nil, fmt.Errorf("wal gen %d header: %v", gen, err)
	}
	return nf, nil
}

// pruneGenerations removes snapshots and WAL files older than
// newGen-1. Best effort — a leftover file only wastes space — except
// that a generation's WAL must never outlive its snapshot's removal
// failing: recovery may fall back to any snapshot still present and
// then requires that generation's WAL, so the snapshot goes first and
// a failure there keeps the WAL too.
func (w *walState) pruneGenerations(newGen uint64) {
	if newGen < 2 {
		return
	}
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		gen, kind, ok := parseGenName(name)
		if !ok || gen >= newGen-1 || kind != fileSnap {
			continue
		}
		if w.fs.Remove(w.snapPath(gen)) == nil {
			_ = w.fs.Remove(w.walPath(gen))
		}
	}
	// WAL files with no snapshot at all (generation 1, or a snapshot
	// already pruned in an earlier pass) still need to go eventually.
	for _, name := range names {
		gen, kind, ok := parseGenName(name)
		if !ok || gen >= newGen-1 || kind != fileWAL {
			continue
		}
		if _, err := w.fs.ReadFile(w.snapPath(gen)); err != nil {
			// No snapshot for this generation: safe to drop only if a
			// later snapshot covers it, which newGen's just-written one
			// does.
			_ = w.fs.Remove(w.walPath(gen))
		}
	}
}

const (
	fileSnap = "snapshot"
	fileWAL  = "wal"
)

// parseGenName decodes "snap-<gen>.snapshot" / "wal-<gen>.log" names.
func parseGenName(name string) (gen uint64, kind string, ok bool) {
	var g uint64
	if n, err := fmt.Sscanf(name, "snap-%d.snapshot", &g); err == nil && n == 1 {
		return g, fileSnap, true
	}
	if n, err := fmt.Sscanf(name, "wal-%d.log", &g); err == nil && n == 1 {
		return g, fileWAL, true
	}
	return 0, "", false
}

// encodeSnapshot serializes one epoch's catalog. The epoch is
// immutable, so this needs no lock beyond the caller's db.mu (held to
// keep the writer head still while the generation rotates).
func encodeSnapshot(ep *epoch, gen uint64) []byte {
	keys := make([]string, 0, len(ep.tables))
	for k := range ep.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	b := []byte(snapFileMagic)
	b = appendUint(b, gen)
	b = appendUint(b, uint64(len(keys)))
	for _, k := range keys {
		t := ep.tables[k]
		td := ep.tds[t]
		b = appendSchema(b, t.Schema)
		b = appendUint(b, uint64(len(td.rows)))
		for _, row := range td.rows {
			b = appendTuple(b, row)
		}
		b = appendUint(b, uint64(len(td.indexes)))
		for _, sl := range td.indexes {
			b = appendStr(b, sl.idx.Name)
			b = appendUint(b, uint64(len(sl.idx.Cols)))
			for _, c := range sl.idx.Cols {
				b = appendUint(b, uint64(c))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeSnapshot validates and rebuilds a snapshot file's catalog
// into recovery's mutable restore shape.
func decodeSnapshot(data []byte, wantGen uint64) (map[string]*restoreTable, error) {
	if len(data) < len(snapFileMagic)+4 {
		return nil, fmt.Errorf("truncated snapshot (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("snapshot CRC mismatch")
	}
	if string(body[:len(snapFileMagic)]) != snapFileMagic {
		return nil, fmt.Errorf("bad snapshot magic")
	}
	d := &walDecoder{b: body, off: len(snapFileMagic)}
	if gen := d.uint(); gen != wantGen {
		return nil, fmt.Errorf("snapshot generation %d under name for generation %d", gen, wantGen)
	}
	nTables := d.uint()
	if d.err != nil || nTables > uint64(len(body)) {
		return nil, fmt.Errorf("implausible table count %d", nTables)
	}
	tables := make(map[string]*restoreTable, nTables)
	for i := uint64(0); i < nTables && d.err == nil; i++ {
		s := d.schema()
		if s == nil {
			break
		}
		rt := &restoreTable{t: &Table{Name: s.Name, Schema: s}}
		nRows := d.uint()
		if d.err != nil || nRows > uint64(len(body)) {
			d.fail("implausible row count %d", nRows)
			break
		}
		rt.rows = make([]relation.Tuple, 0, nRows)
		for r := uint64(0); r < nRows && d.err == nil; r++ {
			rt.rows = append(rt.rows, d.tuple())
		}
		nIdx := d.uint()
		if d.err != nil || nIdx > uint64(len(body)) {
			d.fail("implausible index count %d", nIdx)
			break
		}
		for j := uint64(0); j < nIdx && d.err == nil; j++ {
			idx := &Index{Name: d.str()}
			nc := d.uint()
			if d.err != nil || nc > uint64(s.Width()) {
				d.fail("implausible index width %d", nc)
				break
			}
			for c := uint64(0); c < nc; c++ {
				idx.Cols = append(idx.Cols, int(d.uint()))
			}
			rt.indexes = append(rt.indexes, idx)
		}
		tables[lowerName(rt.t.Name)] = rt
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot decode: %v", d.err)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", len(body)-d.off)
	}
	return tables, nil
}
