package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// spineDB builds a table with enough duplication that the DISTINCT
// sub-select dedupes heavily and the grouped outer sees repeats.
func spineDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE ev (cat TEXT, sub TEXT, val INTEGER, tag TEXT)`)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		mustExec(t, db, `INSERT INTO ev VALUES (?, ?, ?, ?)`,
			relation.Text(fmt.Sprintf("c%d", rng.Intn(5))),
			relation.Text(fmt.Sprintf("s%d", rng.Intn(4))),
			relation.Int(int64(rng.Intn(3))),
			relation.Text(fmt.Sprintf("t%d", rng.Intn(2))))
	}
	return db
}

// The Qmv shape: GROUP BY over the leading columns of a lone derived
// DISTINCT source. The group keys must come from the source's dedup
// key spine (visible in EXPLAIN), and the results must match the
// forced nested-loop reference byte for byte.
func TestGroupBySpineSharedWithDistinctSource(t *testing.T) {
	db := spineDB(t)
	q := `SELECT cat, sub, COUNT(*) FROM (SELECT DISTINCT cat, sub, val, tag FROM ev) m GROUP BY cat, sub HAVING COUNT(*) > 1`

	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[spine: 2-col keys shared with distinct source]") {
		t.Fatalf("grouped select does not share the distinct key spine:\n%s", plan)
	}

	planned, nested := runBothPaths(t, db, q)
	if planned != nested {
		t.Fatalf("spine grouping diverges from nested loop:\nplanned: %s\nnested:  %s", planned, nested)
	}
}

// Shapes that must NOT take the spine: GROUP BY out of source order,
// GROUP BY a non-prefix column set, an outer WHERE, and a
// non-DISTINCT source. All must still answer identically to the
// nested-loop reference.
func TestGroupBySpineIneligibleShapes(t *testing.T) {
	db := spineDB(t)
	cases := []string{
		// reordered: (sub, cat) is not the source's column order
		`SELECT sub, cat, COUNT(*) FROM (SELECT DISTINCT cat, sub, val FROM ev) m GROUP BY sub, cat`,
		// gap: skips the source's second column
		`SELECT cat, val, COUNT(*) FROM (SELECT DISTINCT cat, sub, val FROM ev) m GROUP BY cat, val`,
		// outer WHERE filters rows after the distinct
		`SELECT cat, COUNT(*) FROM (SELECT DISTINCT cat, sub FROM ev) m WHERE cat <> 'c0' GROUP BY cat`,
		// source is not DISTINCT
		`SELECT cat, COUNT(*) FROM (SELECT cat, sub FROM ev) m GROUP BY cat`,
		// expression key
		`SELECT COUNT(*) FROM (SELECT DISTINCT cat, sub FROM ev) m GROUP BY cat || sub`,
	}
	for _, q := range cases {
		plan, err := db.Explain(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if strings.Contains(plan, "[spine:") {
			t.Errorf("ineligible shape took the spine:\n%s\n%s", q, plan)
		}
		planned, nested := runBothPaths(t, db, q)
		if planned != nested {
			t.Errorf("results diverge for %s:\nplanned: %s\nnested:  %s", q, planned, nested)
		}
	}
}

// The spine must survive parameters and repeated prepared execution
// (per-env state, shared plan), and NULLs must group identically.
func TestGroupBySpineWithNullsAndReexecution(t *testing.T) {
	db := spineDB(t)
	mustExec(t, db, `INSERT INTO ev VALUES (NULL, 's0', 1, 't0'), (NULL, 's0', 2, 't1'), (NULL, NULL, 1, 't0')`)
	q := `SELECT cat, sub, COUNT(*) FROM (SELECT DISTINCT cat, sub, val FROM ev) m GROUP BY cat, sub`
	want, nested := runBothPaths(t, db, q)
	if want != nested {
		t.Fatalf("NULL grouping diverges:\nplanned: %s\nnested:  %s", want, nested)
	}
	for i := 0; i < 3; i++ {
		if got := canonical(mustQuery(t, db, q)); got != want {
			t.Fatalf("re-execution %d diverges: %s vs %s", i, got, want)
		}
	}
}
