package sqldb

import (
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// testDB builds a small database used across the engine tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE emp (id INTEGER, name TEXT, dept TEXT, salary REAL)`)
	mustExec(t, db, `INSERT INTO emp VALUES
		(1, 'ann', 'eng', 100.0),
		(2, 'bob', 'eng', 90.0),
		(3, 'cat', 'ops', 80.0),
		(4, 'dan', 'ops', 80.0),
		(5, 'eve', 'hr', NULL)`)
	mustExec(t, db, `CREATE TABLE dept (name TEXT, head TEXT)`)
	mustExec(t, db, `INSERT INTO dept VALUES ('eng', 'ann'), ('ops', 'cat')`)
	return db
}

func mustExec(t *testing.T, db *DB, q string, params ...relation.Value) int64 {
	t.Helper()
	n, err := db.Exec(q, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, q string, params ...relation.Value) *Result {
	t.Helper()
	res, err := db.Query(q, params...)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

// flat renders a result as "a,b;c,d" for compact assertions.
func flat(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		rows[i] = strings.Join(cells, ",")
	}
	return strings.Join(rows, ";")
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT name FROM emp WHERE id = 3`)
	if flat(res) != "cat" {
		t.Errorf("got %q", flat(res))
	}
	if got := res.Cols[0]; got != "name" {
		t.Errorf("column name = %q", got)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT * FROM dept ORDER BY name`)
	if flat(res) != "eng,ann;ops,cat" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT d.* FROM dept d ORDER BY 1 DESC`)
	if flat(res) != "ops,cat;eng,ann" {
		t.Errorf("got %q", flat(res))
	}
}

func TestWhereOperators(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`SELECT id FROM emp WHERE salary > 85 ORDER BY id`:                    "1;2",
		`SELECT id FROM emp WHERE salary >= 80 AND dept <> 'eng' ORDER BY id`: "3;4",
		`SELECT id FROM emp WHERE dept = 'eng' OR dept = 'hr' ORDER BY id`:    "1;2;5",
		`SELECT id FROM emp WHERE NOT (dept = 'eng') ORDER BY id`:             "3;4;5",
		`SELECT id FROM emp WHERE salary IS NULL`:                             "5",
		`SELECT id FROM emp WHERE salary IS NOT NULL ORDER BY id`:             "1;2;3;4",
		`SELECT id FROM emp WHERE id IN (2, 4, 99) ORDER BY id`:               "2;4",
		`SELECT id FROM emp WHERE id NOT IN (1, 2, 3, 5)`:                     "4",
		`SELECT id FROM emp WHERE name LIKE '%a%' ORDER BY id`:                "1;3;4",
		`SELECT id FROM emp WHERE name LIKE '_a_' ORDER BY id`:                "3;4",
		`SELECT id FROM emp WHERE name NOT LIKE '%a%' ORDER BY id`:            "2;5",
		`SELECT id FROM emp WHERE salary BETWEEN 80 AND 95 ORDER BY id`:       "2;3;4",
		`SELECT id FROM emp WHERE salary NOT BETWEEN 80 AND 95 ORDER BY id`:   "1",
		`SELECT id FROM emp WHERE id % 2 = 0 ORDER BY id`:                     "2;4",
		`SELECT id FROM emp WHERE id != 1 AND id < 3`:                         "2",
	}
	for q, want := range cases {
		if got := flat(mustQuery(t, db, q)); got != want {
			t.Errorf("%s\n got %q want %q", q, got, want)
		}
	}
}

func TestNullComparisonNeverMatches(t *testing.T) {
	db := testDB(t)
	// salary = NULL is unknown, never true; likewise <> NULL.
	if got := flat(mustQuery(t, db, `SELECT id FROM emp WHERE salary = NULL`)); got != "" {
		t.Errorf("= NULL matched %q", got)
	}
	if got := flat(mustQuery(t, db, `SELECT id FROM emp WHERE salary <> NULL`)); got != "" {
		t.Errorf("<> NULL matched %q", got)
	}
	// NOT IN with a NULL in the list is never true.
	if got := flat(mustQuery(t, db, `SELECT id FROM emp WHERE id NOT IN (1, NULL)`)); got != "" {
		t.Errorf("NOT IN (…, NULL) matched %q", got)
	}
	// IN with NULL still matches listed values.
	if got := flat(mustQuery(t, db, `SELECT id FROM emp WHERE id IN (1, NULL)`)); got != "1" {
		t.Errorf("IN (1, NULL) = %q", got)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`SELECT 1 + 2 * 3`:                             "7",
		`SELECT (1 + 2) * 3`:                           "9",
		`SELECT -5 + 2`:                                "-3",
		`SELECT 7 / 2`:                                 "3",
		`SELECT 7.0 / 2`:                               "3.5",
		`SELECT 7 % 3`:                                 "1",
		`SELECT ABS(-4)`:                               "4",
		`SELECT ABS(-4.5)`:                             "4.5",
		`SELECT COALESCE(NULL, NULL, 3)`:               "3",
		`SELECT COALESCE(NULL, 'x')`:                   "x",
		`SELECT LENGTH('hello')`:                       "5",
		`SELECT UPPER('aBc')`:                          "ABC",
		`SELECT LOWER('aBc')`:                          "abc",
		`SELECT NULLIF(3, 3)`:                          "NULL",
		`SELECT NULLIF(3, 4)`:                          "3",
		`SELECT 'a' || 'b' || 'c'`:                     "abc",
		`SELECT TRUE`:                                  "TRUE",
		`SELECT FALSE OR TRUE`:                         "TRUE",
		`SELECT CASE WHEN 1 > 2 THEN 'x' ELSE 'y' END`: "y",
		`SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END`: "b",
		`SELECT CASE 9 WHEN 1 THEN 'a' END`:                 "NULL",
	}
	for q, want := range cases {
		if got := flat(mustQuery(t, db, q)); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
	if _, err := db.Query(`SELECT 1 / 0`); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := db.Query(`SELECT 1 % 0`); err == nil {
		t.Error("modulo by zero must error")
	}
}

func TestJoins(t *testing.T) {
	db := testDB(t)
	want := "ann,ann;cat,cat"
	q1 := `SELECT e.name, d.head FROM emp e, dept d WHERE e.dept = d.name AND e.name = d.head ORDER BY e.name`
	q2 := `SELECT e.name, d.head FROM emp e JOIN dept d ON e.dept = d.name WHERE e.name = d.head ORDER BY e.name`
	q3 := `SELECT e.name, d.head FROM emp e INNER JOIN dept d ON e.dept = d.name WHERE e.name = d.head ORDER BY e.name`
	for _, q := range []string{q1, q2, q3} {
		if got := flat(mustQuery(t, db, q)); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
	// Cross join cardinality.
	res := mustQuery(t, db, `SELECT COUNT(*) FROM emp, dept`)
	if flat(res) != "10" {
		t.Errorf("cross join count = %q", flat(res))
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM emp GROUP BY dept ORDER BY dept`)
	if flat(res) != "eng,2,190,90,100;hr,1,NULL,NULL,NULL;ops,2,160,80,80" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept`)
	if flat(res) != "eng;ops" {
		t.Errorf("HAVING got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT dept, COUNT(DISTINCT salary) FROM emp GROUP BY dept ORDER BY dept`)
	if flat(res) != "eng,2;hr,0;ops,1" {
		t.Errorf("COUNT DISTINCT got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT AVG(salary) FROM emp WHERE dept = 'ops'`)
	if flat(res) != "80" {
		t.Errorf("AVG got %q", flat(res))
	}
	// Global aggregate over empty input yields one row.
	res = mustQuery(t, db, `SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 100`)
	if flat(res) != "0,NULL" {
		t.Errorf("empty aggregate got %q", flat(res))
	}
	// GROUP BY over empty input yields no rows.
	res = mustQuery(t, db, `SELECT dept, COUNT(*) FROM emp WHERE id > 100 GROUP BY dept`)
	if len(res.Rows) != 0 {
		t.Errorf("empty grouped query returned %d rows", len(res.Rows))
	}
	// COUNT(col) skips NULLs.
	res = mustQuery(t, db, `SELECT COUNT(salary), COUNT(*) FROM emp`)
	if flat(res) != "4,5" {
		t.Errorf("COUNT null handling got %q", flat(res))
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT DISTINCT dept FROM emp ORDER BY dept`)
	if flat(res) != "eng;hr;ops" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT DISTINCT salary FROM emp WHERE dept = 'ops'`)
	if flat(res) != "80" {
		t.Errorf("got %q", flat(res))
	}
}

func TestOrderLimitOffset(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT id FROM emp ORDER BY salary DESC, id ASC`)
	// NULL sorts first ascending, so DESC puts it last.
	if flat(res) != "1;2;3;4;5" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT id FROM emp ORDER BY id LIMIT 2`)
	if flat(res) != "1;2" {
		t.Errorf("LIMIT got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 3`)
	if flat(res) != "4;5" {
		t.Errorf("OFFSET got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT id FROM emp ORDER BY id LIMIT 100 OFFSET 100`)
	if flat(res) != "" {
		t.Errorf("past-end OFFSET got %q", flat(res))
	}
}

func TestExistsCorrelated(t *testing.T) {
	db := testDB(t)
	// Decorrelatable shape: single table, equality on outer column.
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT d.name FROM dept d WHERE d.name = e.dept) ORDER BY e.id`)
	if flat(res) != "1;2;3;4" {
		t.Errorf("EXISTS got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT e.id FROM emp e WHERE NOT EXISTS
		(SELECT d.name FROM dept d WHERE d.name = e.dept)`)
	if flat(res) != "5" {
		t.Errorf("NOT EXISTS got %q", flat(res))
	}
	// With an inner-only filter folded into the hash build.
	res = mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT 1 FROM dept d WHERE d.name = e.dept AND d.head = 'ann') ORDER BY e.id`)
	if flat(res) != "1;2" {
		t.Errorf("EXISTS+filter got %q", flat(res))
	}
}

func TestExistsNonDecorrelatable(t *testing.T) {
	db := testDB(t)
	// Inequality correlation falls back to the naive path; results must
	// still be correct.
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT 1 FROM emp e2 WHERE e2.salary > e.salary) ORDER BY e.id`)
	if flat(res) != "2;3;4" {
		t.Errorf("naive EXISTS got %q", flat(res))
	}
}

func TestExistsUncorrelated(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept) ORDER BY id`)
	if flat(res) != "1;2;3;4;5" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE name = 'nope')`)
	if flat(res) != "" {
		t.Errorf("got %q", flat(res))
	}
}

func TestInSelect(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT id FROM emp WHERE dept IN (SELECT name FROM dept) ORDER BY id`)
	if flat(res) != "1;2;3;4" {
		t.Errorf("IN subquery got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT id FROM emp WHERE dept NOT IN (SELECT name FROM dept)`)
	if flat(res) != "5" {
		t.Errorf("NOT IN subquery got %q", flat(res))
	}
	if _, err := db.Query(`SELECT id FROM emp WHERE dept IN (SELECT name, head FROM dept)`); err == nil {
		t.Error("multi-column IN subquery must error")
	}
}

func TestScalarSubquery(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT (SELECT COUNT(*) FROM dept)`)
	if flat(res) != "2" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT e.name FROM emp e WHERE e.salary = (SELECT MAX(salary) FROM emp)`)
	if flat(res) != "ann" {
		t.Errorf("got %q", flat(res))
	}
	if _, err := db.Query(`SELECT (SELECT id FROM emp)`); err == nil {
		t.Error("scalar subquery with many rows must error")
	}
}

func TestDerivedTable(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT m.dept, m.c FROM
		(SELECT dept, COUNT(*) AS c FROM emp GROUP BY dept) m
		WHERE m.c > 1 ORDER BY m.dept`)
	if flat(res) != "eng,2;ops,2" {
		t.Errorf("got %q", flat(res))
	}
	if _, err := db.Query(`SELECT * FROM (SELECT 1)`); err == nil {
		t.Error("derived table without alias must error")
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, `UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'`)
	if n != 2 {
		t.Errorf("affected %d, want 2", n)
	}
	res := mustQuery(t, db, `SELECT salary FROM emp WHERE id = 1`)
	if flat(res) != "110" {
		t.Errorf("got %q", flat(res))
	}
	// UPDATE with correlated EXISTS, the shape IncDetect uses.
	n = mustExec(t, db, `UPDATE emp SET name = UPPER(name) WHERE EXISTS
		(SELECT 1 FROM dept WHERE dept.name = emp.dept AND dept.head = emp.name)`)
	if n != 2 {
		t.Errorf("EXISTS update affected %d, want 2", n)
	}
	res = mustQuery(t, db, `SELECT name FROM emp WHERE id IN (1, 3) ORDER BY id`)
	if flat(res) != "ANN;CAT" {
		t.Errorf("got %q", flat(res))
	}
	if n := mustExec(t, db, `UPDATE emp SET salary = 0 WHERE id = 999`); n != 0 {
		t.Errorf("no-match update affected %d", n)
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, `DELETE FROM emp WHERE salary IS NULL`)
	if n != 1 {
		t.Errorf("deleted %d, want 1", n)
	}
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM emp`)); got != "4" {
		t.Errorf("count after delete = %q", got)
	}
	n = mustExec(t, db, `DELETE FROM emp`)
	if n != 4 {
		t.Errorf("deleted %d, want 4", n)
	}
}

func TestInsertVariants(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO dept (name) VALUES ('hr')`)
	res := mustQuery(t, db, `SELECT head FROM dept WHERE name = 'hr'`)
	if flat(res) != "NULL" {
		t.Errorf("missing column must default NULL, got %q", flat(res))
	}
	// INSERT ... SELECT.
	mustExec(t, db, `CREATE TABLE names (n TEXT)`)
	n := mustExec(t, db, `INSERT INTO names SELECT name FROM emp WHERE dept = 'eng'`)
	if n != 2 {
		t.Errorf("insert-select inserted %d", n)
	}
	if got := flat(mustQuery(t, db, `SELECT n FROM names ORDER BY n`)); got != "ann;bob" {
		t.Errorf("got %q", got)
	}
	// Parameterized insert.
	mustExec(t, db, `INSERT INTO names VALUES (?)`, relation.Text("zoe"))
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM names`)); got != "3" {
		t.Errorf("got %q", got)
	}
	// Arity errors.
	if _, err := db.Exec(`INSERT INTO names VALUES ('a', 'b')`); err == nil {
		t.Error("width mismatch must fail")
	}
	if _, err := db.Exec(`INSERT INTO names (nope) VALUES ('a')`); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestTypeCoercion(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (i INTEGER, f REAL, b BOOLEAN, s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (2.0, 3, 1, 42)`)
	res := mustQuery(t, db, `SELECT i, f, b, s FROM t`)
	if flat(res) != "2,3,TRUE,42" {
		t.Errorf("got %q", flat(res))
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (2.5, 3, 1, 'x')`); err == nil {
		t.Error("lossy float→int must fail")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 1, 7, 'x')`); err == nil {
		t.Error("int 7 → bool must fail")
	}
}

func TestParams(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT name FROM emp WHERE dept = ? AND salary > ? ORDER BY id`,
		relation.Text("eng"), relation.Float(95))
	if flat(res) != "ann" {
		t.Errorf("got %q", flat(res))
	}
	if _, err := db.Query(`SELECT * FROM emp WHERE id = ?`); err == nil {
		t.Error("missing parameter must error")
	}
}

func TestTruncateAndDrop(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `TRUNCATE TABLE dept`)
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM dept`)); got != "0" {
		t.Errorf("after truncate: %q", got)
	}
	mustExec(t, db, `DROP TABLE dept`)
	if _, err := db.Query(`SELECT * FROM dept`); err == nil {
		t.Error("dropped table must be gone")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS dept`) // no error
	if _, err := db.Exec(`DROP TABLE dept`); err == nil {
		t.Error("dropping a missing table must fail")
	}
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS emp (x INTEGER)`) // exists: no-op
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM emp`)); got != "5" {
		t.Errorf("IF NOT EXISTS must not clobber: %q", got)
	}
	if _, err := db.Exec(`CREATE TABLE emp (x INTEGER)`); err == nil {
		t.Error("duplicate create must fail")
	}
}

func TestTransactions(t *testing.T) {
	db := testDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `DELETE FROM emp WHERE dept = 'eng'`)
	mustExec(t, db, `UPDATE dept SET head = 'nobody'`)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM emp`)); got != "5" {
		t.Errorf("rollback lost rows: %q", got)
	}
	if got := flat(mustQuery(t, db, `SELECT head FROM dept WHERE name = 'eng'`)); got != "ann" {
		t.Errorf("rollback lost update: %q", got)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `DELETE FROM emp WHERE id = 5`)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := flat(mustQuery(t, db, `SELECT COUNT(*) FROM emp`)); got != "4" {
		t.Errorf("commit must keep changes: %q", got)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit must fail")
	}

	tx1, _ := db.Begin()
	if _, err := db.Begin(); err == nil {
		t.Error("nested Begin must fail")
	}
	if err := tx1.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE INDEX idx_dept ON emp (dept)`)
	if _, err := db.Exec(`CREATE INDEX idx_dept ON emp (dept)`); err == nil {
		t.Error("duplicate index must fail")
	}
	if _, err := db.Exec(`CREATE INDEX i2 ON emp (nope)`); err == nil {
		t.Error("index on missing column must fail")
	}
	// Index stays correct across mutations (lazy rebuild).
	mustExec(t, db, `INSERT INTO emp VALUES (6, 'fay', 'eng', 70.0)`)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept = 'eng'`)
	if flat(res) != "3" {
		t.Errorf("got %q", flat(res))
	}
}

func TestMultiStatementExec(t *testing.T) {
	db := NewDB()
	n := mustExec(t, db, `CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (2); DELETE FROM a WHERE x = 1;`)
	if n != 3 { // 0 + 2 + 1
		t.Errorf("total affected = %d", n)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select NAME from EMP where ID = 1`)
	if flat(res) != "ann" {
		t.Errorf("got %q", flat(res))
	}
}

func TestAmbiguityAndResolutionErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT name FROM emp, dept`); err == nil {
		t.Error("ambiguous column must error")
	}
	if _, err := db.Query(`SELECT nosuch FROM emp`); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := db.Query(`SELECT x.name FROM emp`); err == nil {
		t.Error("unknown alias must error")
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM nosuch`); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := db.Exec(`UPDATE emp SET nosuch = 1`); err == nil {
		t.Error("update unknown column must error")
	}
}

func TestAggregateOutsideGrouping(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT id FROM emp WHERE COUNT(*) > 1`); err == nil {
		t.Error("aggregate in WHERE must error")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "aXbYc", true},
		{"", "", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestSnapshotAndLoadRelation(t *testing.T) {
	db := testDB(t)
	snap, err := db.Snapshot("dept")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Fatalf("snapshot rows = %d", snap.Len())
	}
	// Mutating the snapshot must not touch the table.
	snap.Rows[0][1] = relation.Text("evil")
	if got := flat(mustQuery(t, db, `SELECT head FROM dept WHERE name = 'eng'`)); got != "ann" {
		t.Errorf("snapshot aliasing: %q", got)
	}

	if err := db.LoadRelation(snap); err != nil {
		t.Fatal(err)
	}
	if got := flat(mustQuery(t, db, `SELECT head FROM dept WHERE name = 'eng'`)); got != "evil" {
		t.Errorf("LoadRelation must replace contents: %q", got)
	}
	if _, err := db.Snapshot("nosuch"); err == nil {
		t.Error("snapshot of missing table must fail")
	}
}

func TestTableHelpers(t *testing.T) {
	db := testDB(t)
	names := db.TableNames()
	if strings.Join(names, ",") != "dept,emp" {
		t.Errorf("TableNames = %v", names)
	}
	n, err := db.TableLen("emp")
	if err != nil || n != 5 {
		t.Errorf("TableLen = %d, %v", n, err)
	}
	if _, err := db.TableLen("nosuch"); err == nil {
		t.Error("TableLen of missing table must fail")
	}
}
