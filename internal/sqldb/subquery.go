package sqldb

import (
	"fmt"

	"ecfd/internal/relation"
)

// hashBuild is the cached build side of a decorrelated EXISTS: the set
// of key tuples present in the inner table (after inner-only filters).
// It lives on the env (one per statement execution), so concurrent
// executions of the same compiled plan never share it.
type hashBuild struct {
	version uint64
	set     map[string]bool
}

// probeScratch is the per-env scratch of one decorrelated probe site:
// the evaluated key values, the reusable key buffer, and the cached
// loop-invariant key state (see probeKey). Keyed by the *Exists node on
// the env, so concurrent executions of the same plan never share it.
type probeScratch struct {
	vals   []relation.Value
	keyBuf []byte
	// Invariant-key cache: patRow identifies the pattern-site row the
	// cached state was computed for; condBits has bit i set when part
	// i's CASE condition held; invVals holds the values of fully
	// pattern-invariant parts.
	patRow   relation.Tuple
	condBits uint64
	invVals  []relation.Value
}

// DisableInvariantKeys turns the loop-invariant probe-key cache off,
// re-evaluating every key expression per probe (for A/B benchmarking).
var DisableInvariantKeys = false

// probeKey is the compiled key side of a decorrelated probe: one part
// per key column, analysed for loop-invariance against the *pattern
// site* — the single outer FROM source (typically the paper's tiny enc
// pattern table) that the invariant inputs read. The detection queries
// probe with keys like
//
//	(c.CID, CASE WHEN c.A_L > 0 THEN TOTEXT(t.A) ELSE '@' END, …)
//
// where c is bound in an outer loop over ten-odd pattern tuples and t
// is the inner 100k-row data scan. c.CID and every CASE condition (and
// its constant ELSE arm) depend only on c, so they are evaluated once
// per pattern tuple and replayed from the env scratch for the 100k
// probes underneath — only the THEN projections of the few attributes a
// pattern actually constrains run per probe.
type probeKey struct {
	x       *Exists
	parts   []probePart
	site    binding // depth/src of the pattern site (col unused)
	hasSite bool
}

type probePart struct {
	full compiledExpr // the whole expression; fallback when not cached
	inv  bool         // whole part reads only the pattern site
	// One-armed CASE with a pattern-site-only condition and a literal
	// ELSE: cond/res are its compiled halves, alt the ELSE value.
	cond compiledExpr
	res  compiledExpr
	alt  relation.Value
}

// scratch returns the env's scratch for this probe site.
func (pk *probeKey) scratch(en *env) *probeScratch {
	ps := en.probes[pk.x]
	if ps == nil {
		if en.probes == nil {
			en.probes = make(map[*Exists]*probeScratch)
		}
		ps = &probeScratch{
			vals:    make([]relation.Value, len(pk.parts)),
			invVals: make([]relation.Value, len(pk.parts)),
		}
		en.probes[pk.x] = ps
	}
	return ps
}

// eval computes the probe-key values into ps.vals. ok is false when a
// key component is NULL (an equality can never match then). When the
// pattern-site row is unchanged since the last call, the invariant
// parts replay from the cache.
func (pk *probeKey) eval(en *env, ps *probeScratch) (ok bool, err error) {
	if pk.hasSite {
		row := en.frames[pk.site.depth].rows[pk.site.src]
		if ps.patRow == nil || len(row) == 0 || &ps.patRow[0] != &row[0] {
			ps.patRow = nil // a mid-refresh error must not leave stale state
			ps.condBits = 0
			for i := range pk.parts {
				part := &pk.parts[i]
				switch {
				case part.inv:
					v, err := part.full(en)
					if err != nil {
						return false, err
					}
					ps.invVals[i] = v
				case part.cond != nil:
					cv, err := part.cond(en)
					if err != nil {
						return false, err
					}
					if cv.Truth() {
						ps.condBits |= 1 << uint(i)
					}
				}
			}
			if len(row) > 0 {
				ps.patRow = row
			}
		}
	}
	for i := range pk.parts {
		part := &pk.parts[i]
		var v relation.Value
		switch {
		case !pk.hasSite:
			v, err = part.full(en)
		case part.inv:
			v = ps.invVals[i]
		case part.cond != nil:
			if ps.condBits&(1<<uint(i)) != 0 {
				v, err = part.res(en)
			} else {
				v = part.alt
			}
		default:
			v, err = part.full(en)
		}
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			return false, nil
		}
		ps.vals[i] = v
	}
	return true, nil
}

// inBuild caches the value set of an uncorrelated IN (SELECT ...).
type inBuild struct {
	set     map[string]bool
	hasNull bool
}

// compileExists lowers [NOT] EXISTS (SELECT ...). Three strategies:
//
//  1. Decorrelated hash probe — the subquery is a single-table select
//     whose WHERE is a conjunction of (a) inner-column = outer-expr
//     equalities and (b) inner-only filters. One hash build over the
//     inner table per statement, O(1) probe per outer row. This is the
//     path the eCFD detection queries take (t.A = TA.A AND c.CID =
//     TA.CID) and what keeps BatchDetect at two passes over D.
//  2. Uncorrelated — the subquery never references outer scopes: it is
//     executed once per statement and its emptiness cached.
//  3. Naive — re-execute per outer row (correlated in a form we cannot
//     decorrelate).
func (c *compiler) compileExists(x *Exists) (compiledExpr, error) {
	if probe, err := c.tryDecorrelate(x); err != nil {
		return nil, err
	} else if probe != nil {
		return probe, nil
	}

	cs, err := c.compileSubSelect(x.Sub)
	if err != nil {
		return nil, err
	}
	neg := x.Neg

	deps := map[int]bool{}
	if err := c.depsOfSelect(x.Sub, deps); err != nil {
		return nil, err
	}
	if len(deps) == 0 && !subqueryMutable(x.Sub) {
		// Uncorrelated: evaluate once per env, cache emptiness.
		return func(en *env) (relation.Value, error) {
			b, ok := en.hash[x]
			if !ok {
				// Frames beyond the subquery's depth must be hidden while
				// executing an uncorrelated subquery compiled at depth
				// len(c.scopes). They are restored by the deferred pop in
				// exec, so only truncate here.
				saved := en.frames
				en.frames = en.frames[:cs.depth]
				rows, err := cs.exec(en)
				en.frames = saved
				if err != nil {
					return relation.Null(), err
				}
				b = &hashBuild{set: map[string]bool{"": len(rows) > 0}}
				en.hash[x] = b
			}
			return relation.Bool(b.set[""] != neg), nil
		}, nil
	}

	return func(en *env) (relation.Value, error) {
		found, err := cs.execExists(en)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Bool(found != neg), nil
	}, nil
}

// subqueryMutable reports whether caching the subquery result for the
// duration of one statement would be unsound. Tables cannot change
// mid-statement in this engine (queries run against a pinned immutable
// epoch; mutations publish new epochs that in-flight statements never
// observe), so results are always cacheable.
func subqueryMutable(*Select) bool { return false }

// DisableIndexProbes turns persistent-index probing off, falling back
// to per-statement hash builds (for A/B benchmarking).
var DisableIndexProbes = false

// DisableDecorrelation turns the EXISTS hash-probe optimization off.
// It exists only so the ablation benchmark (DESIGN.md §5) can measure
// what the optimization buys; production code must leave it false.
var DisableDecorrelation = false

// decorrProbe is the analyzed form of a decorrelatable EXISTS: the
// inner table, the key columns and the matching outer key expressions,
// the inner-only build filters, and — when no filters apply and a
// secondary index covers the key columns exactly — the persistent
// index answering the probe. It is the single source of truth for the
// decorrelated semantics, shared by the per-row closure (compileExists)
// and the batch probe kernel (kprobe): both resolve the same env hash
// build (keyed by x) or the same index, and encode keys identically.
type decorrProbe struct {
	x       *Exists
	neg     bool
	t       *Table
	keyCols []int
	outer   []Expr // outer key expressions, aligned with keyCols
	filters []compiledExpr
	pk      *probeKey
	idx     *Index // exact-cover index (filters empty), or nil
	perm    []int  // index column order → outer key position
}

// ensureHash returns the env's build-side key set for the probe,
// building it on first use (and after table mutations). Shared by the
// hash-probe closure and the probe kernel so the two can never drift.
func (d *decorrProbe) ensureHash(en *env) (*hashBuild, error) {
	td := en.td(d.t)
	b := en.hash[d.x]
	if b != nil && b.version == td.version {
		return b, nil
	}
	set := make(map[string]bool, len(td.rows))
	key := make([]relation.Value, len(d.keyCols))
	en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
	fr := &en.frames[len(en.frames)-1]
build:
	for _, row := range td.rows {
		fr.rows[0] = row
		for _, f := range d.filters {
			v, err := f(en)
			if err != nil {
				en.frames = en.frames[:len(en.frames)-1]
				return nil, err
			}
			if !v.Truth() {
				continue build
			}
		}
		for i, col := range d.keyCols {
			if row[col].IsNull() {
				continue build // NULL keys can never match an equality
			}
			key[i] = row[col]
		}
		set[relation.KeyOf(key)] = true
	}
	en.frames = en.frames[:len(en.frames)-1]
	b = &hashBuild{version: td.version, set: set}
	en.hash[d.x] = b
	return b, nil
}

// analyzeDecorrelate performs the shape analysis of tryDecorrelate and
// returns the shared probe description, or nil when the subquery does
// not qualify. Compile errors in qualifying shapes propagate. Results
// are memoized per compiler (closure and kernel extraction both ask).
func (c *compiler) analyzeDecorrelate(x *Exists) (*decorrProbe, error) {
	if DisableDecorrelation {
		return nil, nil
	}
	if d, ok := c.decorr[x]; ok {
		return d, nil
	}
	d, err := c.analyzeDecorrelateUncached(x)
	if err != nil {
		return nil, err
	}
	if c.decorr == nil {
		c.decorr = make(map[*Exists]*decorrProbe)
	}
	c.decorr[x] = d
	return d, nil
}

func (c *compiler) analyzeDecorrelateUncached(x *Exists) (*decorrProbe, error) {
	sub := x.Sub
	if len(sub.From) != 1 || sub.From[0].Sub != nil ||
		len(sub.GroupBy) > 0 || sub.Having != nil || sub.Limit != nil ||
		sub.Offset != nil || selectHasAggregate(sub) {
		return nil, nil
	}
	t, err := c.ep.table(sub.From[0].Table)
	if err != nil {
		return nil, nil // unknown table: let the naive path report it
	}

	innerScope := &scopeInfo{sources: []sourceInfo{{name: sub.From[0].Name(), cols: t.Schema.Names()}}}
	innerDepth := len(c.scopes)
	ic := &compiler{db: c.db, ep: c.ep, scopes: append(append([]*scopeInfo{}, c.scopes...), innerScope)}

	var conjuncts []Expr
	splitConjuncts(sub.Where, &conjuncts)

	type probe struct {
		col   int
		outer Expr
	}
	var probes []probe
	var filters []compiledExpr

	for _, cj := range conjuncts {
		deps := map[int]bool{}
		if err := ic.depsOf(cj, deps); err != nil {
			return nil, err
		}
		outerDeps, innerDeps := false, deps[innerDepth]
		for d := range deps {
			if d < innerDepth {
				outerDeps = true
			}
		}
		switch {
		case !outerDeps:
			// Inner-only (or constant) filter: applied at build time. It
			// must be compiled against the inner scope.
			f, err := ic.compileExpr(cj)
			if err != nil {
				return nil, err
			}
			filters = append(filters, f)
		case outerDeps && innerDeps:
			eq, ok := cj.(*Binary)
			if !ok || eq.Op != "=" {
				return nil, nil
			}
			col, outerExpr, ok := ic.probeSides(eq, innerDepth)
			if !ok {
				return nil, nil
			}
			probes = append(probes, probe{col: col, outer: outerExpr})
		default:
			// References outer scopes only: row-independent w.r.t. the
			// inner table but varies per outer row — cannot fold into the
			// build. Bail to the naive path.
			return nil, nil
		}
	}
	if len(probes) == 0 {
		return nil, nil
	}

	d := &decorrProbe{x: x, neg: x.Neg, t: t}
	d.keyCols = make([]int, len(probes))
	d.outer = make([]Expr, len(probes))
	for i, p := range probes {
		d.keyCols[i] = p.col
		d.outer[i] = p.outer
	}
	if d.pk, err = ic.buildProbeKey(x, d.outer, innerDepth); err != nil {
		return nil, err
	}
	d.filters = filters
	// With no build-time filters, a secondary index on exactly the key
	// columns replaces the per-statement hash build: the index persists
	// across statements and only rebuilds after table mutations. The
	// probe key must follow the index's column order.
	if len(filters) == 0 && !DisableIndexProbes {
		d.idx, d.perm = probeIndex(c.ep.tds[t], d.keyCols)
	}
	return d, nil
}

// tryDecorrelate returns a hash-probe closure for x, or nil when the
// subquery shape does not qualify.
func (c *compiler) tryDecorrelate(x *Exists) (compiledExpr, error) {
	d, err := c.analyzeDecorrelate(x)
	if err != nil || d == nil {
		return nil, err
	}
	pk, neg := d.pk, d.neg

	if d.idx != nil {
		idx, perm, t := d.idx, d.perm, d.t
		return func(en *env) (relation.Value, error) {
			// lookupEq resolves the epoch's index structure (building or
			// extending the shared map under its own lock) and the row
			// fence; probe() then takes a short per-probe read lock — no
			// structure lock is ever held across key evaluation. The key
			// scratch is per env: closures are shared across goroutines.
			id, fence := en.td(t).lookupEq(t, idx)
			ps := pk.scratch(en)
			ok, err := pk.eval(en, ps)
			if err != nil {
				return relation.Null(), err
			}
			if !ok {
				return relation.Bool(neg), nil // NULL key never matches
			}
			keyBuf := ps.keyBuf[:0]
			for _, pi := range perm {
				keyBuf = relation.AppendKey(keyBuf, ps.vals[pi])
				keyBuf = append(keyBuf, 0x1f)
			}
			ps.keyBuf = keyBuf
			return relation.Bool((len(id.probe(string(keyBuf), fence)) > 0) != neg), nil
		}, nil
	}

	return func(en *env) (relation.Value, error) {
		b, err := d.ensureHash(en)
		if err != nil {
			return relation.Null(), err
		}
		ps := pk.scratch(en)
		ok, err := pk.eval(en, ps)
		if err != nil {
			return relation.Null(), err
		}
		if !ok {
			return relation.Bool(neg), nil // = NULL never matches
		}
		keyBuf := ps.keyBuf[:0]
		for _, v := range ps.vals {
			keyBuf = relation.AppendKey(keyBuf, v)
			keyBuf = append(keyBuf, 0x1f)
		}
		ps.keyBuf = keyBuf
		return relation.Bool(b.set[string(keyBuf)] != neg), nil
	}, nil
}

// probeIndex finds a secondary index covering exactly the probe
// columns and computes the permutation mapping probe positions to the
// index's column order.
func probeIndex(td *tableData, keyCols []int) (*Index, []int) {
	idx := td.findIndex(keyCols)
	if idx == nil {
		return nil, nil
	}
	perm := make([]int, len(idx.Cols))
	for j, col := range idx.Cols {
		perm[j] = -1
		for i, kc := range keyCols {
			if kc == col {
				perm[j] = i
				break
			}
		}
		if perm[j] < 0 {
			return nil, nil
		}
	}
	return idx, perm
}

// probeSides identifies which side of an equality is the inner column
// and verifies the other side never touches the inner scope.
func (c *compiler) probeSides(eq *Binary, innerDepth int) (col int, outer Expr, ok bool) {
	try := func(colSide, outerSide Expr) (int, Expr, bool) {
		ref, isRef := colSide.(*ColumnRef)
		if !isRef {
			return 0, nil, false
		}
		b, err := c.resolve(ref)
		if err != nil || b.depth != innerDepth {
			return 0, nil, false
		}
		deps := map[int]bool{}
		if err := c.depsOf(outerSide, deps); err != nil || deps[innerDepth] {
			return 0, nil, false
		}
		return b.col, outerSide, true
	}
	if col, outer, ok := try(eq.L, eq.R); ok {
		return col, outer, true
	}
	return try(eq.R, eq.L)
}

// siteClassifier fixes one invariance site across a sequence of
// expressions and recognizes the two cacheable shapes — whole-
// expression site-invariance, and the one-armed searched CASE whose
// condition is site-only with a literal ELSE. It is the single source
// of truth for the invariance rules, shared by the decorrelated
// probe keys (buildProbeKey) and the batch-aware projection
// (buildProjSpec). The first qualifying expression fixes the site;
// expressions reading other sites stay on the general path.
type siteClassifier struct {
	c          *compiler
	innerDepth int
	site       binding
	hasSite    bool
}

// adopt fixes the site on first use and reports whether e reads
// exactly that site (and nothing deeper or elsewhere).
func (sc *siteClassifier) adopt(e Expr) bool {
	site, ok := sc.c.singleSite(e, sc.innerDepth)
	if !ok {
		return false
	}
	if !sc.hasSite {
		sc.site, sc.hasSite = site, true
	}
	return site == sc.site
}

// cacheableCase reports the one-armed searched CASE with a literal
// ELSE — the only CASE shape splitCase can split — without compiling
// or adopting anything. Shared by splitCase and buildProjSpec's
// site-fixing pre-pass so the two can never drift apart.
func cacheableCase(e Expr) (*Case, bool) {
	cse, ok := e.(*Case)
	if !ok || cse.Operand != nil || len(cse.Whens) != 1 {
		return nil, false
	}
	if _, ok := cse.Else.(*Literal); !ok {
		return nil, false
	}
	return cse, true
}

// splitCase recognizes `CASE WHEN cond THEN res ELSE lit END` with a
// site-only condition, compiling both halves. The shape check comes
// first so adopt's site-fixing side effect only fires for qualifying
// shapes.
func (sc *siteClassifier) splitCase(e Expr) (cond, res compiledExpr, alt relation.Value, ok bool, err error) {
	cse, isCase := cacheableCase(e)
	if !isCase || !sc.adopt(cse.Whens[0].Cond) {
		return
	}
	lit := cse.Else.(*Literal)
	if cond, err = sc.c.compileExpr(cse.Whens[0].Cond); err != nil {
		return nil, nil, relation.Value{}, false, err
	}
	if res, err = sc.c.compileExpr(cse.Whens[0].Result); err != nil {
		return nil, nil, relation.Value{}, false, err
	}
	return cond, res, lit.Val, true, nil
}

// buildProbeKey compiles the outer (key) expressions of a decorrelated
// probe and classifies each for loop-invariance against the pattern
// site (siteClassifier): invariant parts cache per pattern tuple,
// split CASEs cache their condition and evaluate only the THEN branch
// per probe, everything else stays on the general path.
func (c *compiler) buildProbeKey(x *Exists, outer []Expr, innerDepth int) (*probeKey, error) {
	pk := &probeKey{x: x, parts: make([]probePart, len(outer))}
	for i, e := range outer {
		full, err := c.compileExpr(e)
		if err != nil {
			return nil, err
		}
		pk.parts[i] = probePart{full: full}
	}
	if DisableInvariantKeys || len(outer) > 64 {
		return pk, nil
	}
	sc := &siteClassifier{c: c, innerDepth: innerDepth}
	for i, e := range outer {
		if sc.adopt(e) {
			pk.parts[i].inv = true
			continue
		}
		cond, res, alt, ok, err := sc.splitCase(e)
		if err != nil {
			return nil, err
		}
		if ok {
			pk.parts[i].cond, pk.parts[i].res, pk.parts[i].alt = cond, res, alt
		}
	}
	pk.site, pk.hasSite = sc.site, sc.hasSite
	return pk, nil
}

// singleSite reports the unique outer (depth, src) binding site an
// expression reads, when it has exactly one and contains no subquery.
func (c *compiler) singleSite(e Expr, innerDepth int) (binding, bool) {
	if exprHasSubquery(e) {
		return binding{}, false
	}
	site := binding{depth: -1}
	ok := true
	if err := c.walkBindings(e, func(b binding) {
		b.col = 0 // site identity is (depth, src)
		if b.depth >= innerDepth {
			ok = false
			return
		}
		if site.depth < 0 {
			site = b
		} else if site != b {
			ok = false
		}
	}); err != nil {
		return binding{}, false
	}
	return site, ok && site.depth >= 0
}

// exprHasSubquery reports whether e contains EXISTS, IN (SELECT) or a
// scalar subquery anywhere.
func exprHasSubquery(e Expr) bool {
	found := false
	walkExprTree(e, func(x Expr) {
		switch x.(type) {
		case *Exists, *InSelect, *ScalarSub:
			found = true
		}
	})
	return found
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e Expr, out *[]Expr) {
	if e == nil {
		return
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		splitConjuncts(b.L, out)
		splitConjuncts(b.R, out)
		return
	}
	*out = append(*out, e)
}

// compileInSelect lowers x [NOT] IN (SELECT ...). Uncorrelated
// subqueries are executed once per statement and cached as a value set;
// correlated ones are re-executed per row.
func (c *compiler) compileInSelect(x *InSelect) (compiledExpr, error) {
	lhs, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	cs, err := c.compileSubSelect(x.Sub)
	if err != nil {
		return nil, err
	}
	if len(cs.cols) != 1 {
		return nil, fmt.Errorf("sql: IN subquery must return one column, got %d", len(cs.cols))
	}
	neg := x.Neg

	deps := map[int]bool{}
	if err := c.depsOfSelect(x.Sub, deps); err != nil {
		return nil, err
	}
	uncorrelated := len(deps) == 0

	evalSet := func(en *env) (*inBuild, error) {
		saved := en.frames
		if uncorrelated {
			en.frames = en.frames[:cs.depth]
		}
		rows, err := cs.exec(en)
		if uncorrelated {
			en.frames = saved
		}
		if err != nil {
			return nil, err
		}
		b := &inBuild{set: make(map[string]bool, len(rows))}
		for _, r := range rows {
			if r[0].IsNull() {
				b.hasNull = true
				continue
			}
			b.set[r[0].Key()] = true
		}
		return b, nil
	}

	return func(en *env) (relation.Value, error) {
		var b *inBuild
		if uncorrelated {
			b = en.inSets[x]
		}
		if b == nil {
			var err error
			if b, err = evalSet(en); err != nil {
				return relation.Null(), err
			}
			if uncorrelated {
				en.inSets[x] = b
			}
		}
		v, err := lhs(en)
		if err != nil {
			return relation.Null(), err
		}
		if v.IsNull() {
			return relation.Null(), nil
		}
		if b.set[v.Key()] {
			return relation.Bool(!neg), nil
		}
		if b.hasNull {
			return relation.Null(), nil
		}
		return relation.Bool(neg), nil
	}, nil
}
