package sqldb

import (
	"fmt"

	"ecfd/internal/relation"
)

// hashBuild is the cached build side of a decorrelated EXISTS: the set
// of key tuples present in the inner table (after inner-only filters).
type hashBuild struct {
	version uint64
	set     map[string]bool
}

// inBuild caches the value set of an uncorrelated IN (SELECT ...).
type inBuild struct {
	set     map[string]bool
	hasNull bool
}

// compileExists lowers [NOT] EXISTS (SELECT ...). Three strategies:
//
//  1. Decorrelated hash probe — the subquery is a single-table select
//     whose WHERE is a conjunction of (a) inner-column = outer-expr
//     equalities and (b) inner-only filters. One hash build over the
//     inner table per statement, O(1) probe per outer row. This is the
//     path the eCFD detection queries take (t.A = TA.A AND c.CID =
//     TA.CID) and what keeps BatchDetect at two passes over D.
//  2. Uncorrelated — the subquery never references outer scopes: it is
//     executed once per statement and its emptiness cached.
//  3. Naive — re-execute per outer row (correlated in a form we cannot
//     decorrelate).
func (c *compiler) compileExists(x *Exists) (compiledExpr, error) {
	if probe, err := c.tryDecorrelate(x); err != nil {
		return nil, err
	} else if probe != nil {
		return probe, nil
	}

	cs, err := c.compileSubSelect(x.Sub)
	if err != nil {
		return nil, err
	}
	neg := x.Neg

	deps := map[int]bool{}
	if err := c.depsOfSelect(x.Sub, deps); err != nil {
		return nil, err
	}
	if len(deps) == 0 && !subqueryMutable(x.Sub) {
		// Uncorrelated: evaluate once per env, cache emptiness.
		return func(en *env) (relation.Value, error) {
			b, ok := en.hash[x]
			if !ok {
				// Frames beyond the subquery's depth must be hidden while
				// executing an uncorrelated subquery compiled at depth
				// len(c.scopes). They are restored by the deferred pop in
				// exec, so only truncate here.
				saved := en.frames
				en.frames = en.frames[:cs.depth]
				rows, err := cs.exec(en)
				en.frames = saved
				if err != nil {
					return relation.Null(), err
				}
				b = &hashBuild{set: map[string]bool{"": len(rows) > 0}}
				en.hash[x] = b
			}
			return relation.Bool(b.set[""] != neg), nil
		}, nil
	}

	return func(en *env) (relation.Value, error) {
		found, err := cs.execExists(en)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Bool(found != neg), nil
	}, nil
}

// subqueryMutable reports whether caching the subquery result for the
// duration of one statement would be unsound. Tables cannot change
// mid-statement in this engine, so results are always cacheable.
func subqueryMutable(*Select) bool { return false }

// DisableIndexProbes turns persistent-index probing off, falling back
// to per-statement hash builds (for A/B benchmarking).
var DisableIndexProbes = false

// DisableDecorrelation turns the EXISTS hash-probe optimization off.
// It exists only so the ablation benchmark (DESIGN.md §5) can measure
// what the optimization buys; production code must leave it false.
var DisableDecorrelation = false

// tryDecorrelate returns a hash-probe closure for x, or nil when the
// subquery shape does not qualify.
func (c *compiler) tryDecorrelate(x *Exists) (compiledExpr, error) {
	if DisableDecorrelation {
		return nil, nil
	}
	sub := x.Sub
	if len(sub.From) != 1 || sub.From[0].Sub != nil ||
		len(sub.GroupBy) > 0 || sub.Having != nil || sub.Limit != nil ||
		sub.Offset != nil || selectHasAggregate(sub) {
		return nil, nil
	}
	t, err := c.db.table(sub.From[0].Table)
	if err != nil {
		return nil, nil // unknown table: let the naive path report it
	}

	innerScope := &scopeInfo{sources: []sourceInfo{{name: sub.From[0].Name(), cols: t.Schema.Names()}}}
	innerDepth := len(c.scopes)
	ic := &compiler{db: c.db, scopes: append(append([]*scopeInfo{}, c.scopes...), innerScope)}

	var conjuncts []Expr
	splitConjuncts(sub.Where, &conjuncts)

	type probe struct {
		col   int
		outer compiledExpr
	}
	var probes []probe
	var filters []compiledExpr

	for _, cj := range conjuncts {
		deps := map[int]bool{}
		if err := ic.depsOf(cj, deps); err != nil {
			return nil, err
		}
		outerDeps, innerDeps := false, deps[innerDepth]
		for d := range deps {
			if d < innerDepth {
				outerDeps = true
			}
		}
		switch {
		case !outerDeps:
			// Inner-only (or constant) filter: applied at build time. It
			// must be compiled against the inner scope.
			f, err := ic.compileExpr(cj)
			if err != nil {
				return nil, err
			}
			filters = append(filters, f)
		case outerDeps && innerDeps:
			eq, ok := cj.(*Binary)
			if !ok || eq.Op != "=" {
				return nil, nil
			}
			col, outerExpr, ok := ic.probeSides(eq, innerDepth)
			if !ok {
				return nil, nil
			}
			oe, err := ic.compileExpr(outerExpr)
			if err != nil {
				return nil, err
			}
			probes = append(probes, probe{col: col, outer: oe})
		default:
			// References outer scopes only: row-independent w.r.t. the
			// inner table but varies per outer row — cannot fold into the
			// build. Bail to the naive path.
			return nil, nil
		}
	}
	if len(probes) == 0 {
		return nil, nil
	}

	keyCols := make([]int, len(probes))
	outerExprs := make([]compiledExpr, len(probes))
	for i, p := range probes {
		keyCols[i] = p.col
		outerExprs[i] = p.outer
	}
	neg := x.Neg

	// With no build-time filters, a secondary index on exactly the key
	// columns replaces the per-statement hash build: the index persists
	// across statements and only rebuilds after table mutations. The
	// probe key must follow the index's column order.
	if len(filters) == 0 && !DisableIndexProbes {
		if idx, perm := probeIndex(t, keyCols); idx != nil {
			// vals and keyBuf are reused across sequential probe calls.
			vals := make([]relation.Value, len(outerExprs))
			var keyBuf []byte
			return func(en *env) (relation.Value, error) {
				// db.mu is held for the whole statement, so the lazy
				// rebuild below cannot race. The dirty check is inlined so
				// the common already-built probe skips the call.
				if idx.dirty || idx.m == nil {
					idx.rebuild(t)
				}
				for i, oe := range outerExprs {
					v, err := oe(en)
					if err != nil {
						return relation.Null(), err
					}
					if v.IsNull() {
						return relation.Bool(neg), nil
					}
					vals[i] = v
				}
				keyBuf = keyBuf[:0]
				for _, pi := range perm {
					keyBuf = relation.AppendKey(keyBuf, vals[pi])
					keyBuf = append(keyBuf, 0x1f)
				}
				return relation.Bool((len(idx.m[string(keyBuf)]) > 0) != neg), nil
			}, nil
		}
	}

	// keyBuf is reused across probe calls; statements execute
	// sequentially, so the compiled closure is never re-entered.
	var keyBuf []byte
	return func(en *env) (relation.Value, error) {
		b := en.hash[x]
		if b == nil || b.version != t.version {
			set := make(map[string]bool, len(t.Rows))
			key := make([]relation.Value, len(keyCols))
			en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
			fr := &en.frames[len(en.frames)-1]
		build:
			for _, row := range t.Rows {
				fr.rows[0] = row
				for _, f := range filters {
					v, err := f(en)
					if err != nil {
						en.frames = en.frames[:len(en.frames)-1]
						return relation.Null(), err
					}
					if !v.Truth() {
						continue build
					}
				}
				for i, col := range keyCols {
					if row[col].IsNull() {
						continue build // NULL keys can never match an equality
					}
					key[i] = row[col]
				}
				set[relation.KeyOf(key)] = true
			}
			en.frames = en.frames[:len(en.frames)-1]
			b = &hashBuild{version: t.version, set: set}
			en.hash[x] = b
		}

		keyBuf = keyBuf[:0]
		for _, oe := range outerExprs {
			v, err := oe(en)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() {
				return relation.Bool(neg), nil // = NULL never matches
			}
			keyBuf = relation.AppendKey(keyBuf, v)
			keyBuf = append(keyBuf, 0x1f)
		}
		return relation.Bool(b.set[string(keyBuf)] != neg), nil
	}, nil
}

// probeIndex finds a secondary index covering exactly the probe
// columns and computes the permutation mapping probe positions to the
// index's column order.
func probeIndex(t *Table, keyCols []int) (*Index, []int) {
	idx := t.findIndex(keyCols)
	if idx == nil {
		return nil, nil
	}
	perm := make([]int, len(idx.Cols))
	for j, col := range idx.Cols {
		perm[j] = -1
		for i, kc := range keyCols {
			if kc == col {
				perm[j] = i
				break
			}
		}
		if perm[j] < 0 {
			return nil, nil
		}
	}
	return idx, perm
}

// probeSides identifies which side of an equality is the inner column
// and verifies the other side never touches the inner scope.
func (c *compiler) probeSides(eq *Binary, innerDepth int) (col int, outer Expr, ok bool) {
	try := func(colSide, outerSide Expr) (int, Expr, bool) {
		ref, isRef := colSide.(*ColumnRef)
		if !isRef {
			return 0, nil, false
		}
		b, err := c.resolve(ref)
		if err != nil || b.depth != innerDepth {
			return 0, nil, false
		}
		deps := map[int]bool{}
		if err := c.depsOf(outerSide, deps); err != nil || deps[innerDepth] {
			return 0, nil, false
		}
		return b.col, outerSide, true
	}
	if col, outer, ok := try(eq.L, eq.R); ok {
		return col, outer, true
	}
	return try(eq.R, eq.L)
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e Expr, out *[]Expr) {
	if e == nil {
		return
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		splitConjuncts(b.L, out)
		splitConjuncts(b.R, out)
		return
	}
	*out = append(*out, e)
}

// compileInSelect lowers x [NOT] IN (SELECT ...). Uncorrelated
// subqueries are executed once per statement and cached as a value set;
// correlated ones are re-executed per row.
func (c *compiler) compileInSelect(x *InSelect) (compiledExpr, error) {
	lhs, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	cs, err := c.compileSubSelect(x.Sub)
	if err != nil {
		return nil, err
	}
	if len(cs.cols) != 1 {
		return nil, fmt.Errorf("sql: IN subquery must return one column, got %d", len(cs.cols))
	}
	neg := x.Neg

	deps := map[int]bool{}
	if err := c.depsOfSelect(x.Sub, deps); err != nil {
		return nil, err
	}
	uncorrelated := len(deps) == 0

	evalSet := func(en *env) (*inBuild, error) {
		saved := en.frames
		if uncorrelated {
			en.frames = en.frames[:cs.depth]
		}
		rows, err := cs.exec(en)
		if uncorrelated {
			en.frames = saved
		}
		if err != nil {
			return nil, err
		}
		b := &inBuild{set: make(map[string]bool, len(rows))}
		for _, r := range rows {
			if r[0].IsNull() {
				b.hasNull = true
				continue
			}
			b.set[r[0].Key()] = true
		}
		return b, nil
	}

	return func(en *env) (relation.Value, error) {
		var b *inBuild
		if uncorrelated {
			b = en.inSets[x]
		}
		if b == nil {
			var err error
			if b, err = evalSet(en); err != nil {
				return relation.Null(), err
			}
			if uncorrelated {
				en.inSets[x] = b
			}
		}
		v, err := lhs(en)
		if err != nil {
			return relation.Null(), err
		}
		if v.IsNull() {
			return relation.Null(), nil
		}
		if b.set[v.Key()] {
			return relation.Bool(!neg), nil
		}
		if b.hasNull {
			return relation.Null(), nil
		}
		return relation.Bool(neg), nil
	}, nil
}
