package sqldb

import (
	"fmt"

	"ecfd/internal/relation"
)

// Tx is a coarse-grained transaction: the first mutation of each table
// inside the transaction snapshots its rows, and Rollback restores
// them. One transaction may be active at a time; Begin/Commit/Rollback
// and every mutation inside the transaction take the catalog write
// lock, so transactions serialize with each other and with the
// concurrent readers (which only ever observe statement-level
// snapshots — there is no cross-statement MVCC). This matches the
// paper's batch/incremental detection scripts, whose writes are
// sequential; the concurrency the detector needs is on the read side.
type Tx struct {
	db      *DB
	backups map[string][]relation.Tuple
	done    bool
}

// Begin starts a transaction.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.activeTx != nil {
		return nil, fmt.Errorf("sql: a transaction is already active")
	}
	tx := &Tx{db: db, backups: make(map[string][]relation.Tuple)}
	db.activeTx = tx
	return tx, nil
}

// backupForTx snapshots a table the first time it is mutated inside the
// active transaction. Callers hold db.mu.
func (db *DB) backupForTx(t *Table) {
	tx := db.activeTx
	if tx == nil {
		return
	}
	key := lowerName(t.Name)
	if _, done := tx.backups[key]; done {
		return
	}
	rows := make([]relation.Tuple, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = r.Clone()
	}
	tx.backups[key] = rows
}

// Commit makes the transaction's changes permanent.
func (tx *Tx) Commit() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	if tx.done {
		return fmt.Errorf("sql: transaction already finished")
	}
	tx.done = true
	tx.db.activeTx = nil
	return nil
}

// Rollback restores every table the transaction touched.
func (tx *Tx) Rollback() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	if tx.done {
		return fmt.Errorf("sql: transaction already finished")
	}
	tx.done = true
	tx.db.activeTx = nil
	for name, rows := range tx.backups {
		t, ok := tx.db.tables[name]
		if !ok {
			continue // table dropped inside the tx; restoring rows is moot
		}
		t.Rows = rows
		t.mutated()
	}
	return nil
}
