package sqldb

import (
	"fmt"

	"ecfd/internal/relation"
)

// Tx is a coarse-grained transaction: the first mutation of each table
// inside the transaction captures its epoch row slice (an O(1) header
// copy — epochs are immutable, so the slice IS the before-image), and
// Rollback restores it wholesale. One transaction may be active at a
// time; Begin/Commit/Rollback and every mutation inside the
// transaction take db.mu, so transactions serialize with each other
// while concurrent readers keep scanning their pinned epochs. This
// matches the paper's batch/incremental detection scripts, whose
// writes are sequential; the concurrency the detector needs is on the
// read side.
//
// Under a WAL, the transaction is also the durability unit: its
// operations buffer in memory and Commit appends them as one framed
// record, so a crash can only ever lose or keep the transaction as a
// whole (see wal.go). A Commit whose append fails restores the
// backups — the caller's view and the recovered view agree that the
// transaction did not happen.
type Tx struct {
	db      *DB
	backups map[string][]relation.Tuple
	done    bool
}

// Begin starts a transaction.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.activeTx != nil {
		return nil, fmt.Errorf("sql: a transaction is already active")
	}
	tx := &Tx{db: db, backups: make(map[string][]relation.Tuple)}
	db.activeTx = tx
	if db.wal != nil {
		db.wal.pend = db.wal.pend[:0]
	}
	return tx, nil
}

// backupForTx captures a table's row slice the first time it is
// mutated inside the active transaction. Copy-on-write makes this
// O(1): tuples already in an epoch are never mutated in place, so the
// slice header alone is a faithful before-image (the restore path
// cap-clips it so later in-place appends cannot leak through).
// Callers hold db.mu.
func (db *DB) backupForTx(t *Table) {
	tx := db.activeTx
	if tx == nil {
		return
	}
	key := lowerName(t.Name)
	if _, done := tx.backups[key]; done {
		return
	}
	rows := db.curW.tds[t].rows
	tx.backups[key] = rows[:len(rows):len(rows)]
}

// Commit makes the transaction's changes permanent. Under a WAL the
// buffered operations are appended as one commit unit first; if that
// append fails, the in-memory changes are rolled back and the typed
// read-only error returned — memory never runs ahead of the log.
func (tx *Tx) Commit() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	if tx.done {
		return fmt.Errorf("sql: transaction already finished")
	}
	tx.done = true
	tx.db.activeTx = nil
	if w := tx.db.wal; w != nil && len(w.pend) > 0 {
		var unit []byte
		for _, p := range w.pend {
			unit = append(unit, p.op...)
		}
		w.pend = nil
		// A transaction commit syncs inline (group=false): its unit can
		// span DDL and bulk DML, and the caller expects durability on
		// return without a follower wait.
		if err := tx.db.walCommit(unit, true, false); err != nil {
			tx.restoreLocked()
			return err
		}
	}
	return nil
}

// Rollback restores every table the transaction touched.
func (tx *Tx) Rollback() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	if tx.done {
		return fmt.Errorf("sql: transaction already finished")
	}
	tx.done = true
	tx.db.activeTx = nil
	tx.restoreLocked()
	if w := tx.db.wal; w != nil && len(w.pend) > 0 {
		// DDL is not rolled back by the engine (the restore above skips
		// catalog changes), so the log keeps exactly the DDL operations
		// and drops the undone DML.
		var unit []byte
		for _, p := range w.pend {
			if p.ddl {
				unit = append(unit, p.op...)
			}
		}
		w.pend = nil
		if len(unit) > 0 {
			if err := tx.db.walCommit(unit, true, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreLocked puts back the row slices captured by backupForTx via a
// wholesale epoch transition (fresh structures; the next probe
// rebuilds). Callers hold db.mu.
func (tx *Tx) restoreLocked() {
	for name, rows := range tx.backups {
		t, ok := tx.db.curW.tables[name]
		if !ok {
			continue // table dropped inside the tx; restoring rows is moot
		}
		tx.db.applyWholesale(t, rows)
	}
}
