package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"ecfd/internal/relation"
)

// Write-ahead log.
//
// Every committed mutation appends one commit unit to the current WAL
// file before it touches the in-memory catalog. A unit is framed as
//
//	[u32 payload length][u32 CRC-32 (IEEE) of payload][payload]
//
// with little-endian integers, and its payload is a sequence of
// logical row-level operations (opInsert, opUpdate, ...) — the
// deterministic deltas the DML executors computed anyway, so replay
// needs no planner and cannot re-decide anything. The unit is the
// atomicity grain: an autocommit statement is one unit, a transaction
// buffers its operations and writes them as one unit at Commit, so a
// torn tail can only ever drop whole statements or whole transactions.
//
// Framing before payload means recovery can classify damage precisely:
// a unit whose frame runs past end-of-file or whose CRC fails *at the
// tail* is the torn final write of a crash and is truncated away; the
// same damage followed by more data is silent corruption and fails
// recovery loudly with the offset (see recovery.go).

// FsyncPolicy controls when the WAL flushes to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every commit unit: an acknowledged
	// mutation survives any crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatched syncs every fsyncEvery units: a crash loses at most
	// the unsynced suffix, but recovers to some committed prefix.
	FsyncBatched
	// FsyncOff never syncs explicitly; the OS decides. Same prefix
	// guarantee as batched, with a larger window.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatched:
		return "batched"
	case FsyncOff:
		return "off"
	default:
		return "always"
	}
}

// ParseFsyncPolicy maps the DSN/flag spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "batched":
		return FsyncBatched, nil
	case "off":
		return FsyncOff, nil
	}
	return FsyncAlways, fmt.Errorf("sql: unknown fsync policy %q (want always, batched or off)", s)
}

const (
	walFileMagic  = "ECFDWAL1" // 8-byte header of every WAL file
	snapFileMagic = "ECFDSNP1" // 8-byte header of every snapshot file
	walFrameSize  = 8          // u32 length + u32 crc
	// maxWALRecord bounds a single unit; a length field beyond it is
	// treated as frame corruption rather than an allocation request.
	maxWALRecord = 1 << 30
	// defaultFsyncEvery is the batched policy's sync interval in units.
	defaultFsyncEvery = 32
)

// ErrReadOnly is the sentinel wrapped by every DML/DDL error after the
// database degraded to read-only: a WAL append or fsync failed, the
// in-memory state was left untouched, and only queries keep serving.
// Match with errors.Is(err, sqldb.ErrReadOnly).
var ErrReadOnly = errors.New("sql: database is read-only after a WAL failure")

// walState is the per-DB durability state. All fields are guarded by
// db.mu (write): every mutation, and therefore every append, runs
// under the catalog write lock, which is exactly the "existing write
// lock" the WAL rides on.
type walState struct {
	fs     WALFS
	dir    string
	policy FsyncPolicy
	every  int   // FsyncBatched: sync every N units
	ckpt   int64 // checkpoint threshold in WAL bytes; 0 = never

	f        WALFile
	gen      uint64
	size     int64
	unsynced int

	// pend buffers the active transaction's operations in program
	// order. Commit concatenates them into one unit — the whole
	// transaction becomes atomic under a torn tail. Rollback keeps only
	// the DDL operations: the engine never rolls DDL back (a table
	// created inside a rolled-back transaction survives, empty), so the
	// log must not drop it either, while the rolled-back DML vanishes
	// from both memory and log.
	pend []pendOp

	// replaying suppresses logging while recovery re-applies the tail:
	// replayed mutations are already in the log.
	replaying bool

	buf []byte // frame assembly scratch

	// curPending, when non-nil, is the group-commit ticket of the
	// statement currently executing under db.mu: its unit is appended
	// but not yet fsynced, so its epoch must not publish until the
	// group leader (or an absorb) makes it durable. Set by walCommit,
	// taken by takePending before the statement releases db.mu —
	// outside a statement's critical section it is always nil.
	curPending *walPending

	// gc coordinates deferred group commit across statements.
	gc groupCommit
}

// walPending is one statement's deferred-durability ticket: the WAL
// size that must be fsynced before the statement may acknowledge, and
// the epoch to publish once it is.
type walPending struct {
	target int64
	f      WALFile // generation file holding the unit
	ep     *epoch  // assigned at takePending (end of statement)
	done   bool
	err    error
}

// groupCommit batches the fsyncs of concurrent autocommit DML under
// the always policy: each statement appends its unit under db.mu,
// registers a pending and releases the lock, then waits. The first
// waiter becomes the leader, issues one Sync covering every
// registered unit, and resolves the whole group — one disk flush
// amortized over all concurrent commits.
//
// Lock order is strictly db.mu → gc.mu; the leader holds neither
// during the Sync itself. syncedTo (durable bytes of the current
// generation) is guarded by db.mu — every writer of it holds db.mu —
// while pendings/syncing/maxTarget are guarded by gc.mu so waiters
// can block without db.mu.
type groupCommit struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pendings  []*walPending
	syncing   bool
	maxTarget int64
	syncedTo  int64
}

func (gc *groupCommit) init() {
	if gc.cond == nil {
		gc.cond = sync.NewCond(&gc.mu)
	}
}

// writable returns nil when mutations are allowed, or the typed
// read-only error carrying the original I/O failure. Callers hold
// db.mu.
func (db *DB) writable() error {
	if db.roErr != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, db.roErr)
	}
	return nil
}

// ReadOnly reports whether the database has degraded to read-only,
// and the I/O failure that caused it.
func (db *DB) ReadOnly() (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.roErr != nil, db.roErr
}

// Durable reports whether the database has a WAL attached.
func (db *DB) Durable() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal != nil
}

// pendOp is one buffered operation of the active transaction.
type pendOp struct {
	op  []byte
	ddl bool
}

// logging reports whether mutations should append WAL operations.
// Callers hold db.mu (write).
func (db *DB) logging() bool { return db.wal != nil && !db.wal.replaying }

// walLog routes one encoded operation: buffered while a transaction is
// active, otherwise committed as its own unit. Callers hold db.mu and
// have already passed writable(); they must apply the in-memory
// mutation only if walLog returns nil — log-before-apply is what keeps
// a failed append from corrupting state.
func (db *DB) walLog(op []byte, ddl bool) error {
	w := db.wal
	if db.activeTx != nil {
		w.pend = append(w.pend, pendOp{op: op, ddl: ddl})
		return nil
	}
	return db.walCommit(op, false, !ddl)
}

// walCommit appends one commit unit and runs the fsync policy; on
// failure the database degrades to read-only and the typed error is
// returned.
//
// group selects deferred group commit: under the always policy an
// autocommit DML unit is appended without its own fsync, a pending is
// registered, and the statement's outer caller waits for the group
// leader to flush (awaitDurable) after releasing db.mu — so
// concurrent writers share one Sync. Everything else (DDL,
// LoadRelation, transaction commit, checkpoint-due units) first
// absorbs any outstanding group, then syncs inline as before.
//
// The threshold checkpoint must preserve the invariant that snapshot
// generation g captures exactly the units of WAL generations below g:
// with log-before-apply (autocommit DML, applied=false) memory does
// not yet reflect this unit, so a due checkpoint runs BEFORE the
// append and the unit lands in the fresh generation; at transaction
// commit (applied=true) memory is already ahead of the log, so the
// checkpoint runs AFTER the append, once snapshot state and logged
// units agree again. Either way the unit is never stranded in a
// generation whose snapshot misses it.
func (db *DB) walCommit(payload []byte, applied, group bool) error {
	if err := db.writable(); err != nil {
		return err
	}
	w := db.wal
	due := func() bool { return w.ckpt > 0 && w.size >= w.ckpt }
	if group && w.policy == FsyncAlways && !due() {
		pre := w.size
		if err := w.appendRaw(payload); err != nil {
			db.roErr = fmt.Errorf("wal append (gen %d): %v", w.gen, err)
			return db.writable()
		}
		if w.size == pre {
			return nil
		}
		p := &walPending{target: w.size, f: w.f}
		w.gc.init()
		w.gc.mu.Lock()
		w.gc.pendings = append(w.gc.pendings, p)
		if p.target > w.gc.maxTarget {
			w.gc.maxTarget = p.target
		}
		w.gc.mu.Unlock()
		w.curPending = p
		return nil
	}
	if err := db.absorbPendings(); err != nil {
		return db.writable()
	}
	if !applied && due() {
		if err := db.checkpointLocked(); err != nil {
			db.roErr = fmt.Errorf("checkpoint: %v", err)
			return db.writable()
		}
	}
	if err := w.appendUnit(payload); err != nil {
		db.roErr = fmt.Errorf("wal append (gen %d): %v", w.gen, err)
		return db.writable()
	}
	if applied && due() {
		if err := db.checkpointLocked(); err != nil {
			// The unit above is durable and applied; only future
			// mutations are refused.
			db.roErr = fmt.Errorf("checkpoint: %v", err)
		}
	}
	return nil
}

// takePending hands the statement its group-commit ticket, assigning
// the epoch the group leader publishes once the unit is durable.
// Called under db.mu at the very end of a mutating statement; the
// caller must invoke awaitDurable on the result after releasing
// db.mu.
func (db *DB) takePending() *walPending {
	if db.wal == nil || db.wal.curPending == nil {
		return nil
	}
	p := db.wal.curPending
	db.wal.curPending = nil
	p.ep = db.curW
	return p
}

// awaitDurable blocks until the pending's unit is fsynced (and its
// epoch published) or the group fails. The first waiter of an
// unsynced group becomes the leader. Callers hold no locks.
func (db *DB) awaitDurable(p *walPending) error {
	gc := &db.wal.gc
	gc.mu.Lock()
	for !p.done {
		if !gc.syncing {
			gc.syncing = true
			gc.mu.Unlock()
			db.leadSync(p.f)
			gc.mu.Lock()
			continue
		}
		gc.cond.Wait()
	}
	err := p.err
	gc.mu.Unlock()
	return err
}

// leadSync is the group leader: one Sync for every unit registered
// before it started, then resolution under db.mu → gc.mu. Pendings
// registered during the Sync stay queued; the broadcast wakes their
// waiters and one of them leads the next round.
func (db *DB) leadSync(f WALFile) {
	w := db.wal
	gc := &w.gc
	gc.mu.Lock()
	target := gc.maxTarget
	gc.mu.Unlock()
	err := f.Sync()
	db.mu.Lock()
	gc.mu.Lock()
	gc.syncing = false
	if len(gc.pendings) == 0 {
		// A checkpoint/Close/inline commit absorbed the group while we
		// were syncing; nothing left to resolve.
		gc.cond.Broadcast()
		gc.mu.Unlock()
		db.mu.Unlock()
		return
	}
	if err == nil {
		if target > gc.syncedTo {
			gc.syncedTo = target
		}
		w.unsynced = 0
		keep := gc.pendings[:0]
		for _, p := range gc.pendings {
			if p.target <= gc.syncedTo {
				db.publish(p.ep)
				p.done = true
			} else {
				keep = append(keep, p)
			}
		}
		gc.pendings = keep
	} else {
		db.failGroupLocked(fmt.Errorf("wal group fsync (gen %d): %v", w.gen, err))
	}
	gc.cond.Broadcast()
	gc.mu.Unlock()
	db.mu.Unlock()
}

// failGroupLocked handles a group fsync failure: the database
// degrades to read-only, the unsynced tail (whose durability is
// indeterminate) is truncated away, the writer head rewinds to the
// published epoch — discarding the never-published epochs of the
// failed units — and every pending resolves with the typed error.
// Callers hold db.mu and gc.mu.
func (db *DB) failGroupLocked(cause error) {
	w := db.wal
	gc := &w.gc
	db.roErr = cause
	w.discardTail(gc.syncedTo)
	db.curW = db.cur.Load()
	roe := db.writable()
	for _, p := range gc.pendings {
		p.err = roe
		p.done = true
	}
	gc.pendings = nil
}

// absorbPendings resolves any outstanding group with its own inline
// Sync instead of waiting for a leader (which may need the db.mu we
// hold — waiting would deadlock). Called under db.mu by every
// non-group commit path, by checkpoints before rotating the WAL, and
// by Close. A leader finishing afterwards finds the group empty and
// becomes a no-op.
func (db *DB) absorbPendings() error {
	w := db.wal
	if w == nil {
		return nil
	}
	gc := &w.gc
	gc.mu.Lock()
	n := len(gc.pendings)
	gc.mu.Unlock()
	if n == 0 {
		return nil
	}
	err := w.f.Sync()
	gc.mu.Lock()
	if err == nil {
		gc.syncedTo = w.size
		w.unsynced = 0
		for _, p := range gc.pendings {
			db.publish(p.ep)
			p.done = true
		}
		gc.pendings = nil
	} else {
		db.failGroupLocked(fmt.Errorf("wal group fsync (gen %d): %v", w.gen, err))
	}
	gc.cond.Broadcast()
	gc.mu.Unlock()
	return err
}

// appendUnit frames and writes one unit as a single Write call, then
// syncs per policy. On any failure the partial unit is truncated away
// (best-effort): the operation reported an error, so it must not
// silently reappear on the next recovery just because its bytes had
// already reached the page cache.
func (w *walState) appendUnit(payload []byte) error {
	pre := w.size
	if err := w.appendRaw(payload); err != nil {
		return err
	}
	if w.size == pre {
		return nil // empty payload
	}
	w.unsynced++
	switch w.policy {
	case FsyncAlways:
		w.unsynced = 0
		if err := w.f.Sync(); err != nil {
			w.discardTail(pre)
			return err
		}
		w.gc.syncedTo = w.size
	case FsyncBatched:
		if w.unsynced >= w.every {
			w.unsynced = 0
			if err := w.f.Sync(); err != nil {
				w.discardTail(pre)
				return err
			}
			w.gc.syncedTo = w.size
		}
	}
	return nil
}

// appendRaw frames and writes one unit without syncing.
func (w *walState) appendRaw(payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	if len(payload) > maxWALRecord {
		return fmt.Errorf("unit of %d bytes exceeds the %d-byte record limit", len(payload), maxWALRecord)
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	pre := w.size
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err == nil && n < len(w.buf) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(w.buf))
	}
	if err != nil {
		w.discardTail(pre)
		return err
	}
	return nil
}

// discardTail best-effort truncates the current WAL file back to pre,
// removing a unit whose append failed and whose durability is
// therefore indeterminate. If the truncate itself fails the database
// is degrading to read-only anyway and recovery's torn-tail handling
// owns the leftovers.
func (w *walState) discardTail(pre int64) {
	if w.size == pre {
		return
	}
	if err := w.fs.Truncate(w.walPath(w.gen), pre); err == nil {
		w.size = pre
	}
}

// --- operation encoding ---

// Operation codes. Each operation is [1 byte code][body]; a commit
// unit's payload is a concatenation of operations.
const (
	opInsert byte = iota + 1
	opDelete
	opUpdate
	opTruncate
	opCreateTable
	opDropTable
	opCreateIndex
	opLoadRelation
)

func appendUint(b []byte, x uint64) []byte { return binary.AppendUvarint(b, x) }

func appendStr(b []byte, s string) []byte {
	b = appendUint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue encodes one value as [1 byte kind][kind-specific body].
func appendValue(b []byte, v relation.Value) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case relation.KindNull:
	case relation.KindBool, relation.KindInt:
		b = binary.AppendVarint(b, v.I)
	case relation.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case relation.KindText:
		b = appendStr(b, v.S)
	}
	return b
}

func appendTuple(b []byte, row relation.Tuple) []byte {
	b = appendUint(b, uint64(len(row)))
	for _, v := range row {
		b = appendValue(b, v)
	}
	return b
}

func appendSchema(b []byte, s *relation.Schema) []byte {
	b = appendStr(b, s.Name)
	b = appendUint(b, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		b = appendStr(b, a.Name)
		b = append(b, byte(a.Kind))
		b = appendUint(b, uint64(len(a.Domain)))
		for _, v := range a.Domain {
			b = appendValue(b, v)
		}
	}
	return b
}

// logInsert records rows appended to a table.
func (db *DB) logInsert(table string, rows []relation.Tuple) error {
	if !db.logging() || len(rows) == 0 {
		return nil
	}
	op := []byte{opInsert}
	op = appendStr(op, table)
	op = appendUint(op, uint64(len(rows)))
	for _, r := range rows {
		op = appendTuple(op, r)
	}
	return db.walLog(op, false)
}

// logDelete records the removal of the rows at positions pos
// (ascending, pre-delete positions).
func (db *DB) logDelete(table string, pos []int) error {
	if !db.logging() || len(pos) == 0 {
		return nil
	}
	op := []byte{opDelete}
	op = appendStr(op, table)
	op = appendUint(op, uint64(len(pos)))
	for _, p := range pos {
		op = appendUint(op, uint64(p))
	}
	return db.walLog(op, false)
}

// logUpdate records an assignment of cols at row positions pos; vals
// holds one value slice per position, aligned with cols.
func (db *DB) logUpdate(table string, pos, cols []int, vals [][]relation.Value) error {
	if !db.logging() || len(pos) == 0 {
		return nil
	}
	op := []byte{opUpdate}
	op = appendStr(op, table)
	op = appendUint(op, uint64(len(cols)))
	for _, c := range cols {
		op = appendUint(op, uint64(c))
	}
	op = appendUint(op, uint64(len(pos)))
	for i, p := range pos {
		op = appendUint(op, uint64(p))
		for _, v := range vals[i] {
			op = appendValue(op, v)
		}
	}
	return db.walLog(op, false)
}

func (db *DB) logTruncate(table string) error {
	if !db.logging() {
		return nil
	}
	op := []byte{opTruncate}
	op = appendStr(op, table)
	return db.walLog(op, false)
}

func (db *DB) logCreateTable(s *relation.Schema) error {
	if !db.logging() {
		return nil
	}
	op := []byte{opCreateTable}
	op = appendSchema(op, s)
	return db.walLog(op, true)
}

func (db *DB) logDropTable(table string) error {
	if !db.logging() {
		return nil
	}
	op := []byte{opDropTable}
	op = appendStr(op, table)
	return db.walLog(op, true)
}

func (db *DB) logCreateIndex(name, table string, cols []string) error {
	if !db.logging() {
		return nil
	}
	op := []byte{opCreateIndex}
	op = appendStr(op, name)
	op = appendStr(op, table)
	op = appendUint(op, uint64(len(cols)))
	for _, c := range cols {
		op = appendStr(op, c)
	}
	return db.walLog(op, true)
}

func (db *DB) logLoadRelation(r *relation.Relation) error {
	if !db.logging() {
		return nil
	}
	op := []byte{opLoadRelation}
	op = appendSchema(op, r.Schema)
	op = appendUint(op, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		op = appendTuple(op, row)
	}
	return db.walLog(op, true)
}

// --- operation decoding ---

// walDecoder walks an encoded byte stream; the first malformed read
// latches err and every later read returns zero values, so decode
// loops check err once at the end.
type walDecoder struct {
	b   []byte
	off int
	err error
}

func (d *walDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *walDecoder) more() bool { return d.err == nil && d.off < len(d.b) }

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated operation at byte %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *walDecoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("truncated string at byte %d", d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *walDecoder) value() relation.Value {
	k := relation.Kind(d.byte())
	switch k {
	case relation.KindNull:
		return relation.Null()
	case relation.KindBool:
		return relation.Bool(d.int() != 0)
	case relation.KindInt:
		return relation.Int(d.int())
	case relation.KindFloat:
		if d.err != nil {
			return relation.Null()
		}
		if len(d.b)-d.off < 8 {
			d.fail("truncated float at byte %d", d.off)
			return relation.Null()
		}
		bits := binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
		return relation.Float(math.Float64frombits(bits))
	case relation.KindText:
		return relation.Text(d.str())
	}
	d.fail("unknown value kind %d at byte %d", k, d.off-1)
	return relation.Null()
}

func (d *walDecoder) tuple() relation.Tuple {
	n := d.uint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail("implausible tuple width %d at byte %d", n, d.off)
		return nil
	}
	row := make(relation.Tuple, n)
	for i := range row {
		row[i] = d.value()
	}
	return row
}

func (d *walDecoder) schema() *relation.Schema {
	name := d.str()
	n := d.uint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail("implausible attribute count %d at byte %d", n, d.off)
		return nil
	}
	attrs := make([]relation.Attribute, n)
	for i := range attrs {
		attrs[i].Name = d.str()
		attrs[i].Kind = relation.Kind(d.byte())
		if dn := d.uint(); dn > 0 {
			if d.err != nil || dn > uint64(len(d.b)-d.off) {
				d.fail("implausible domain size %d at byte %d", dn, d.off)
				return nil
			}
			attrs[i].Domain = make([]relation.Value, dn)
			for j := range attrs[i].Domain {
				attrs[i].Domain[j] = d.value()
			}
		}
	}
	if d.err != nil {
		return nil
	}
	s, err := relation.NewSchema(name, attrs...)
	if err != nil {
		d.fail("rebuilding schema %s: %v", name, err)
		return nil
	}
	return s
}
