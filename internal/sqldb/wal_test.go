package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// fingerprint reduces the whole catalog — schemas, rows in storage
// order, index definitions — to one comparable string. It reads the
// published epoch, so no lock is needed.
func fingerprint(db *DB) string {
	ep := db.cur.Load()
	keys := make([]string, 0, len(ep.tables))
	for k := range ep.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		t := ep.tables[k]
		td := ep.tds[t]
		fmt.Fprintf(&b, "table %s (", t.Name)
		for _, a := range t.Schema.Attrs {
			fmt.Fprintf(&b, "%s:%s:%d,", a.Name, a.Kind, len(a.Domain))
		}
		b.WriteString(")\n")
		for _, row := range td.rows {
			b.WriteString(row.Key())
			b.WriteByte('\n')
		}
		for _, sl := range td.indexes {
			fmt.Fprintf(&b, "index %s %v\n", sl.idx.Name, sl.idx.Cols)
		}
	}
	return b.String()
}

func memOpen(t *testing.T, fs *MemFS, opts WALOptions) *DB {
	t.Helper()
	opts.Dir = "/wal"
	opts.FS = fs
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func walExec(t *testing.T, db *DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("exec %q: %v", s, err)
		}
	}
}

func seedSmall(t *testing.T, db *DB) {
	t.Helper()
	walExec(t, db,
		"CREATE TABLE t (a INT, b TEXT, c FLOAT)",
		"CREATE INDEX it_a ON t (a)",
		"INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, 'three', 3.5)",
		"UPDATE t SET b = 'TWO' WHERE a = 2",
		"DELETE FROM t WHERE a = 3",
	)
}

func TestWALRoundTripMemFS(t *testing.T) {
	fs := NewMemFS(1)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)

	// A transaction's mutations commit as one unit.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	walExec(t, db, "INSERT INTO t VALUES (10, 'ten', 10.5)", "UPDATE t SET c = 0.0 WHERE a = 1")
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// A rolled-back transaction leaves no trace.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	walExec(t, db, "DELETE FROM t WHERE a >= 0")
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}

	want := fingerprint(db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2 := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	if got := fingerprint(db2); got != want {
		t.Fatalf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The recovered DB stays fully usable: queries, DML, indexes.
	res, err := db2.Query("SELECT b FROM t WHERE a = 2")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "TWO" {
		t.Fatalf("query after recovery: %v %v", res, err)
	}
	walExec(t, db2, "INSERT INTO t VALUES (4, 'four', 4.5)")
}

func TestWALRoundTripOSFS(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WALOptions{Dir: dir, Fsync: FsyncBatched, FsyncEvery: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedSmall(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	walExec(t, db, "INSERT INTO t VALUES (7, 'seven', 7.0)")
	want := fingerprint(db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := Open(WALOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := fingerprint(db2); got != want {
		t.Fatalf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if st := db2.RecoveryStats(); st.SnapshotGen == 0 {
		t.Fatalf("expected recovery from a snapshot, got %+v", st)
	}
}

func TestWALLoadRelationSurvives(t *testing.T) {
	fs := NewMemFS(2)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	schema, err := relation.NewSchema("r",
		relation.Attribute{Name: "X", Kind: relation.KindInt},
		relation.Attribute{Name: "Y", Kind: relation.KindText},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(schema)
	for i := 0; i < 5; i++ {
		r.Rows = append(r.Rows, relation.Tuple{relation.Int(int64(i)), relation.Text(fmt.Sprint("v", i))})
	}
	if err := db.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(db)
	db2 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db2); got != want {
		t.Fatalf("LoadRelation not recovered:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// walFileBytes returns the raw contents of the current WAL generation.
func walFileBytes(t *testing.T, fs *MemFS, db *DB) (string, []byte) {
	t.Helper()
	path := db.wal.walPath(db.wal.gen)
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return path, data
}

func TestWALTornTailTruncated(t *testing.T) {
	fs := NewMemFS(3)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)
	want := fingerprint(db)
	path, _ := walFileBytes(t, fs, db)

	// Simulate a crash mid-append: a partial frame lands at the tail.
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	db2 := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	if got := fingerprint(db2); got != want {
		t.Fatalf("torn tail not tolerated:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if st := db2.RecoveryStats(); !st.TornTail {
		t.Fatalf("expected TornTail in stats, got %+v", st)
	}
	// The truncated log accepts new appends and another recovery agrees.
	walExec(t, db2, "INSERT INTO t VALUES (9, 'nine', 9.0)")
	want2 := fingerprint(db2)
	db3 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db3); got != want2 {
		t.Fatalf("post-torn appends lost:\nwant:\n%s\ngot:\n%s", want2, got)
	}
}

func TestWALCorruptMidLogFailsLoudly(t *testing.T) {
	fs := NewMemFS(4)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)
	path, data := walFileBytes(t, fs, db)

	// Flip one payload byte of the first record — damage with records
	// after it is silent corruption, not a torn tail.
	fs.mu.Lock()
	fs.files[path].data[len(walFileMagic)+walFrameSize] ^= 0xff
	fs.mu.Unlock()
	_ = data

	_, err := Open(WALOptions{Dir: "/wal", FS: fs})
	if err == nil {
		t.Fatal("expected recovery to fail on mid-log corruption")
	}
	if !strings.Contains(err.Error(), "corrupt record at offset") {
		t.Fatalf("error should name the offset, got: %v", err)
	}
}

func TestWALSnapshotFallback(t *testing.T) {
	fs := NewMemFS(5)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)
	if err := db.Checkpoint(); err != nil { // gen 2
		t.Fatal(err)
	}
	walExec(t, db, "INSERT INTO t VALUES (20, 'twenty', 20.0)")
	if err := db.Checkpoint(); err != nil { // gen 3
		t.Fatal(err)
	}
	walExec(t, db, "INSERT INTO t VALUES (21, 'final', 21.0)")
	want := fingerprint(db)

	// Damage the newest snapshot; recovery must fall back to gen 2 and
	// replay wal 2 + wal 3 to the identical state.
	snapPath := db.wal.snapPath(3)
	fs.mu.Lock()
	f := fs.files[snapPath]
	f.data[len(f.data)/2] ^= 0xff
	fs.mu.Unlock()

	db2 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db2); got != want {
		t.Fatalf("fallback recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	st := db2.RecoveryStats()
	if !st.FellBack || st.SnapshotGen != 2 {
		t.Fatalf("expected fallback to snapshot gen 2, got %+v", st)
	}

	// Remove the newest snapshot entirely: same story.
	if err := fs.Remove(snapPath); err != nil {
		t.Fatal(err)
	}
	db3 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db3); got != want {
		t.Fatalf("missing-snapshot recovery differs")
	}
}

func TestWALCheckpointThresholdAndPruning(t *testing.T) {
	fs := NewMemFS(6)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways, CheckpointBytes: 512})
	walExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	for i := 0; i < 40; i++ {
		walExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d-padding-padding')", i, i))
	}
	if db.wal.gen < 3 {
		t.Fatalf("expected threshold checkpoints to rotate generations, still at gen %d", db.wal.gen)
	}
	// Only the current and previous generations survive pruning.
	names, err := fs.ReadDir("/wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		gen, _, ok := parseGenName(name)
		if ok && gen < db.wal.gen-1 {
			t.Fatalf("generation %d not pruned (have %v)", gen, names)
		}
	}
	want := fingerprint(db)
	db2 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db2); got != want {
		t.Fatalf("post-checkpoint recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestWALReadOnlyDegradation(t *testing.T) {
	for _, kind := range []FaultKind{FaultShortWrite, FaultWriteErr, FaultSyncErr} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := NewMemFS(7)
			db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
			seedSmall(t, db)
			want := fingerprint(db)

			fs.Arm(kind, 1)
			_, err := db.Exec("INSERT INTO t VALUES (99, 'doomed', 0.0)")
			if !errors.Is(err, ErrReadOnly) {
				t.Fatalf("%s: want ErrReadOnly, got %v", kind, err)
			}
			// The failed mutation must not have touched memory.
			if got := fingerprint(db); got != want {
				t.Fatalf("%s: failed append mutated state", kind)
			}
			// Queries keep serving; further DML stays typed-refused.
			if _, err := db.Query("SELECT a FROM t WHERE a = 1"); err != nil {
				t.Fatalf("%s: query on read-only db: %v", kind, err)
			}
			if _, err := db.Exec("DELETE FROM t WHERE a = 1"); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("%s: second DML: want ErrReadOnly, got %v", kind, err)
			}
			if ro, cause := db.ReadOnly(); !ro || cause == nil {
				t.Fatalf("%s: ReadOnly() = %v, %v", kind, ro, cause)
			}

			// The process did not die, so a reopen sees everything up to
			// the failure (a short write's torn frame is truncated away).
			db2 := memOpen(t, fs, WALOptions{})
			if got := fingerprint(db2); got != want {
				t.Fatalf("%s: reopen after degradation differs:\nwant:\n%s\ngot:\n%s", kind, want, got)
			}
			walExec(t, db2, "INSERT INTO t VALUES (100, 'alive', 1.0)")
		})
	}
}

func TestWALTxCommitFailureRollsBack(t *testing.T) {
	fs := NewMemFS(8)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)
	want := fingerprint(db)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	walExec(t, db, "INSERT INTO t VALUES (50, 'fifty', 50.0)", "DELETE FROM t WHERE a = 1")
	fs.Arm(FaultWriteErr, 1)
	if err := tx.Commit(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("commit under write failure: want ErrReadOnly, got %v", err)
	}
	if got := fingerprint(db); got != want {
		t.Fatalf("failed commit left changes applied:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestWALRollbackKeepsDDL(t *testing.T) {
	fs := NewMemFS(9)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	walExec(t, db,
		"CREATE TABLE fresh (x INT)",
		"INSERT INTO fresh VALUES (1), (2)",
	)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Engine semantics: DDL survives rollback, the rows do not.
	want := fingerprint(db)
	if n, err := db.TableLen("fresh"); err != nil || n != 0 {
		t.Fatalf("fresh after rollback: n=%d err=%v", n, err)
	}
	db2 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db2); got != want {
		t.Fatalf("rollback-surviving DDL not recovered:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestWALShortWriteDiscardsPartialUnit(t *testing.T) {
	// A short write leaves a half-written frame; the engine truncates
	// it away immediately (the DML errored, so it must not reappear),
	// leaving a clean log for the next recovery.
	fs := NewMemFS(10)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways})
	seedSmall(t, db)
	want := fingerprint(db)
	fs.Arm(FaultShortWrite, 1)
	if _, err := db.Exec("INSERT INTO t VALUES (77, 'torn', 0.0)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
	db2 := memOpen(t, fs, WALOptions{})
	if got := fingerprint(db2); got != want {
		t.Fatalf("short-write recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if st := db2.RecoveryStats(); st.TornTail {
		t.Fatalf("partial unit should have been discarded at failure time, got %+v", st)
	}
}
