package sqldb

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// WALFS is the filesystem seam under the durability layer. The engine
// only ever performs this narrow set of operations — append-only
// writes, whole-file reads, atomic rename, truncate — so the interface
// stays small enough to implement faithfully in memory (MemFS), where
// the fault-injection tests simulate short writes, fsync errors and
// process crashes at every I/O boundary. Production uses the OS
// filesystem via OSFS.
type WALFS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing contents.
	Create(path string) (WALFile, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (WALFile, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (used to drop a torn WAL tail).
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata (created/renamed entries).
	SyncDir(dir string) error
}

// WALFile is an open, append-positioned file handle.
type WALFile interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	Close() error
}

// OSFS is the production WALFS over the operating system's filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Create(path string) (WALFile, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) OpenAppend(path string) (WALFile, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (OSFS) Remove(path string) error             { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
