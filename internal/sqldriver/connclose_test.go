package sqldriver

import (
	"context"
	"database/sql/driver"
	"testing"

	"ecfd/internal/relation"
)

// TestConnCloseReleasesSnapshot: database/sql closes a driver
// connection directly — without finishing its transaction — when a
// request context is cancelled mid-operation or the pool discards the
// conn. A ReadOnly transaction's epoch pin must die with the
// connection, or every such disconnect leaks a retired epoch forever.
func TestConnCloseReleasesSnapshot(t *testing.T) {
	const dsn = "driver_connclose_snap"
	eng := Engine(dsn)
	defer Unregister(dsn)
	if _, err := eng.Exec("CREATE TABLE t (A INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	c, err := (&Driver{}).Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.(driver.ConnBeginTx).BeginTx(context.Background(), driver.TxOptions{ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	// Abandon the transaction: close the conn with the pin still held.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Supersede the pinned epoch; if the pin leaked, it now holds a
	// retired epoch that can never be reclaimed.
	if _, err := eng.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.LiveEpochs != 1 || st.RetiredEpochs != 0 {
		t.Fatalf("LiveEpochs = %d, RetiredEpochs = %d after conn close; the ReadOnly pin leaked",
			st.LiveEpochs, st.RetiredEpochs)
	}
}

// TestConnCloseRollsBackWriteTx: a writer transaction abandoned with
// its connection must not leave the engine's write side locked.
func TestConnCloseRollsBackWriteTx(t *testing.T) {
	const dsn = "driver_connclose_tx"
	eng := Engine(dsn)
	defer Unregister(dsn)
	if _, err := eng.Exec("CREATE TABLE t (A INTEGER)"); err != nil {
		t.Fatal(err)
	}

	c, err := (&Driver{}).Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A leaked write transaction would block (or corrupt) this write.
	if _, err := eng.Exec("INSERT INTO t VALUES (?)", relation.Int(1)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Fatalf("row count = %d, want 1", res.Rows[0][0].I)
	}
}
