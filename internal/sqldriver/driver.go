// Package sqldriver exposes the embedded sqldb engine through the
// standard database/sql interface, registered as driver "ecfdmem".
//
// The paper's detection algorithms run against a commercial RDBMS
// through SQL; here they run against sqldb through database/sql, so the
// detection code is written exactly as it would be for a production
// database (Open / Exec / Query / prepared statements / transactions).
//
// The data source name selects a named in-memory database: opening the
// same DSN twice shares one engine instance, and RegisterDB installs a
// pre-built engine under a DSN (used by tests and the bench harness to
// bulk-load datasets without round-tripping through INSERT statements).
//
// The driver is safe for concurrent use: database/sql hands each
// goroutine its own connection, every connection is a thin handle on
// the shared engine, and the engine's MVCC epochs let every SELECT run
// lock-free against the published snapshot while DML/DDL serialize on
// the writer side. The parallel detector
// (internal/detect.ParallelDetect) fans its violation queries through
// exactly this path.
//
// A transaction opened with ReadOnly (sql.TxOptions{ReadOnly: true})
// pins one epoch for its whole lifetime: every query inside it
// observes exactly that snapshot, no matter how many writers commit
// meanwhile, and Commit/Rollback release the pin. Exec inside a
// read-only transaction is refused.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
)

// DriverName is the name the driver registers under.
const DriverName = "ecfdmem"

func init() {
	sql.Register(DriverName, &Driver{})
}

// Driver implements driver.Driver over shared named engines.
type Driver struct{}

var (
	mu      sync.Mutex
	engines = make(map[string]*sqldb.DB)
)

// RegisterDB installs (or replaces) the engine behind a DSN.
func RegisterDB(dsn string, db *sqldb.DB) {
	mu.Lock()
	defer mu.Unlock()
	engines[dsn] = db
}

// Unregister drops the engine behind a DSN so its memory can be
// reclaimed; a later Open of the same DSN starts fresh. A durable
// engine is closed first, syncing any batched WAL tail to disk.
func Unregister(dsn string) {
	mu.Lock()
	defer mu.Unlock()
	if db, ok := engines[dsn]; ok && db.Durable() {
		db.Close()
	}
	delete(engines, dsn)
}

// OpenEngine returns the engine behind a DSN, creating it on first
// use. The DSN is "name" for a volatile in-memory engine, or
// "name?opt=v&opt=v" to configure durability:
//
//	wal=DIR          write-ahead-log directory; presence makes the
//	                 engine durable (recovered from DIR on first open)
//	fsync=POLICY     always | batched | off (default always)
//	fsync_every=N    batched policy: sync every N commit units
//	checkpoint=N     snapshot + rotate the WAL when it exceeds N bytes
//
// Engines are shared by full DSN string: two opens of the same DSN see
// one engine, and the options are read only on the open that creates
// it.
func OpenEngine(dsn string) (*sqldb.DB, error) {
	mu.Lock()
	defer mu.Unlock()
	if db, ok := engines[dsn]; ok {
		return db, nil
	}
	opts, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	var db *sqldb.DB
	if opts.Dir == "" {
		db = sqldb.NewDB()
	} else if db, err = sqldb.Open(opts); err != nil {
		return nil, fmt.Errorf("sqldriver: open %q: %w", dsn, err)
	}
	engines[dsn] = db
	return db, nil
}

// Engine returns the engine behind a DSN, creating it on first use.
// It is the legacy option-free entry point: a DSN with durability
// options that fail to apply (bad option syntax, unreadable WAL
// directory) panics here — use OpenEngine or database/sql Open to
// handle the error.
func Engine(dsn string) *sqldb.DB {
	db, err := OpenEngine(dsn)
	if err != nil {
		panic(err)
	}
	return db
}

// parseDSN splits "name?opt=v&..." into WAL options. A DSN without
// options (or without wal=) selects a volatile engine.
func parseDSN(dsn string) (sqldb.WALOptions, error) {
	var opts sqldb.WALOptions
	q := strings.IndexByte(dsn, '?')
	if q < 0 {
		return opts, nil
	}
	for _, kv := range strings.Split(dsn[q+1:], "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "wal":
			opts.Dir = v
		case "fsync":
			p, err := sqldb.ParseFsyncPolicy(v)
			if err != nil {
				return opts, fmt.Errorf("sqldriver: dsn %q: %w", dsn, err)
			}
			opts.Fsync = p
		case "fsync_every":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return opts, fmt.Errorf("sqldriver: dsn %q: fsync_every=%q is not a positive integer", dsn, v)
			}
			opts.FsyncEvery = n
		case "checkpoint":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return opts, fmt.Errorf("sqldriver: dsn %q: checkpoint=%q is not a byte count", dsn, v)
			}
			opts.CheckpointBytes = n
		default:
			return opts, fmt.Errorf("sqldriver: dsn %q: unknown option %q", dsn, k)
		}
	}
	if opts.Dir == "" && q >= 0 && strings.Contains(dsn[q+1:], "=") {
		// Options without wal= would be silently meaningless.
		if dsn[q+1:] != "" {
			return opts, fmt.Errorf("sqldriver: dsn %q sets durability options without wal=", dsn)
		}
	}
	return opts, nil
}

// Open implements driver.Driver.
func (*Driver) Open(dsn string) (driver.Conn, error) {
	db, err := OpenEngine(dsn)
	if err != nil {
		return nil, err
	}
	return &conn{db: db}, nil
}

type conn struct {
	db   *sqldb.DB
	tx   *sqldb.Tx
	snap *sqldb.Snap // non-nil inside a ReadOnly transaction
}

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	// The engine's Prepare returns the cached compiled plan for this
	// statement text, so repeated database/sql Prepare/Exec cycles (the
	// detector's fixed statement set) skip lexing, parsing and
	// compilation entirely.
	p, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &prepared{conn: c, p: p}, nil
}

// Close releases whatever the connection still holds. database/sql
// closes a driver connection directly — without first finishing its
// transaction — when a context is cancelled mid-operation or the pool
// discards the conn as broken; a ReadOnly transaction's epoch pin (or
// a writer transaction's lock) must not outlive the connection, or a
// disconnected client would strand an MVCC epoch forever.
func (c *conn) Close() error {
	if s := c.snap; s != nil {
		c.snap = nil
		s.Close()
	}
	if tx := c.tx; tx != nil {
		c.tx = nil
		tx.Rollback()
	}
	return nil
}

func (c *conn) Begin() (driver.Tx, error) {
	tx, err := c.db.Begin()
	if err != nil {
		return nil, err
	}
	c.tx = tx
	return &txWrap{conn: c}, nil
}

// BeginTx implements driver.ConnBeginTx. A ReadOnly transaction never
// touches the engine's write path: it pins the published epoch, all
// its queries run against that frozen snapshot, and Commit/Rollback
// just release the pin. Writers proceed concurrently.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if opts.ReadOnly {
		c.snap = c.db.PinSnapshot()
		return &txWrap{conn: c}, nil
	}
	return c.Begin()
}

type txWrap struct{ conn *conn }

func (t *txWrap) Commit() error {
	if s := t.conn.snap; s != nil {
		t.conn.snap = nil
		s.Close()
		return nil
	}
	defer func() { t.conn.tx = nil }()
	return t.conn.tx.Commit()
}

func (t *txWrap) Rollback() error {
	if s := t.conn.snap; s != nil {
		t.conn.snap = nil
		s.Close()
		return nil
	}
	defer func() { t.conn.tx = nil }()
	return t.conn.tx.Rollback()
}

type prepared struct {
	conn *conn
	p    *sqldb.Prepared
}

func (p *prepared) Close() error  { return nil }
func (p *prepared) NumInput() int { return p.p.NumParams() }

func (p *prepared) Exec(args []driver.Value) (driver.Result, error) {
	if p.conn.snap != nil {
		return nil, fmt.Errorf("sqldriver: Exec inside a read-only transaction")
	}
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	n, err := p.p.Exec(params...)
	if err != nil {
		return nil, err
	}
	return result{rows: n}, nil
}

func (p *prepared) Query(args []driver.Value) (driver.Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	var res *sqldb.Result
	if s := p.conn.snap; s != nil {
		res, err = p.p.QueryAt(s, params...)
	} else {
		res, err = p.p.Query(params...)
	}
	if err != nil {
		return nil, fmt.Errorf("sqldriver: %w", err)
	}
	return &rows{res: res}, nil
}

type result struct{ rows int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported")
}
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

type rows struct {
	res *sqldb.Result
	pos int
}

func (r *rows) Columns() []string { return r.res.Cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = fromValue(v)
	}
	return nil
}

// toValues converts driver arguments into engine values.
func toValues(args []driver.Value) ([]relation.Value, error) {
	out := make([]relation.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = relation.Null()
		case int64:
			out[i] = relation.Int(x)
		case float64:
			out[i] = relation.Float(x)
		case bool:
			out[i] = relation.Bool(x)
		case string:
			out[i] = relation.Text(x)
		case []byte:
			out[i] = relation.Text(string(x))
		default:
			return nil, fmt.Errorf("sqldriver: unsupported parameter type %T", a)
		}
	}
	return out, nil
}

func fromValue(v relation.Value) driver.Value {
	switch v.K {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		return v.I
	case relation.KindBool:
		return v.I != 0
	case relation.KindFloat:
		return v.F
	default:
		return v.S
	}
}
