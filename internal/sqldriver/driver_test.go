package sqldriver

import (
	"database/sql"
	"testing"

	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
)

func open(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestBasicRoundTrip(t *testing.T) {
	db := open(t, "t_basic")
	if _, err := db.Exec(`CREATE TABLE kv (k TEXT, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO kv VALUES ('a', 1), ('b', 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("RowsAffected = %d", n)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId must be unsupported")
	}

	rows, err := db.Query(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if len(cols) != 2 || cols[0] != "k" {
		t.Errorf("columns %v", cols)
	}
	var got []string
	for rows.Next() {
		var k string
		var v int64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
		_ = v
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("got %v", got)
	}
}

func TestPlaceholders(t *testing.T) {
	db := open(t, "t_params")
	if _, err := db.Exec(`CREATE TABLE p (s TEXT, n INTEGER, f REAL, b BOOLEAN)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO p VALUES (?, ?, ?, ?)`, "x?y", int64(3), 2.5, true); err != nil {
		t.Fatal(err)
	}
	var s string
	var n int64
	var f float64
	var b bool
	// The '?' inside the string literal must not count as a placeholder.
	err := db.QueryRow(`SELECT s, n, f, b FROM p WHERE s = 'x?y' AND n = ?`, int64(3)).Scan(&s, &n, &f, &b)
	if err != nil {
		t.Fatal(err)
	}
	if s != "x?y" || n != 3 || f != 2.5 || !b {
		t.Errorf("got %q %d %v %v", s, n, f, b)
	}
}

func TestNullScan(t *testing.T) {
	db := open(t, "t_null")
	if _, err := db.Exec(`CREATE TABLE n (v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO n VALUES (NULL)`); err != nil {
		t.Fatal(err)
	}
	var v sql.NullInt64
	if err := db.QueryRow(`SELECT v FROM n`).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v.Valid {
		t.Error("expected NULL")
	}
}

func TestTransactionRollback(t *testing.T) {
	db := open(t, "t_tx")
	if _, err := db.Exec(`CREATE TABLE acct (name TEXT, bal INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO acct VALUES ('a', 100)`); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = 0`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var bal int64
	if err := db.QueryRow(`SELECT bal FROM acct`).Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Errorf("rollback lost data: bal = %d", bal)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = 50`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow(`SELECT bal FROM acct`).Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 50 {
		t.Errorf("commit lost data: bal = %d", bal)
	}
}

func TestPreparedReuse(t *testing.T) {
	db := open(t, "t_prep")
	if _, err := db.Exec(`CREATE TABLE q (x INTEGER)`); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`INSERT INTO q VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 5; i++ {
		if _, err := stmt.Exec(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM q`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("count = %d", n)
	}
}

func TestRegisterDBSharesEngine(t *testing.T) {
	eng := sqldb.NewDB()
	if _, err := eng.Exec(`CREATE TABLE pre (x INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`INSERT INTO pre VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	RegisterDB("t_shared", eng)

	db := open(t, "t_shared")
	var x int64
	if err := db.QueryRow(`SELECT x FROM pre`).Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x != 7 {
		t.Errorf("x = %d", x)
	}
	// Changes through database/sql are visible in the engine.
	if _, err := db.Exec(`INSERT INTO pre VALUES (8)`); err != nil {
		t.Fatal(err)
	}
	n, err := eng.TableLen("pre")
	if err != nil || n != 2 {
		t.Errorf("engine sees %d rows (%v)", n, err)
	}
}

// TestPipelinedScript: a fixed multi-statement sequence — the shape
// the detector's BatchDetect/ApplyUpdates pipelines use — goes through
// database/sql as ONE prepared round trip, with parameter placeholders
// indexing through the script in statement order.
func TestPipelinedScript(t *testing.T) {
	db := open(t, "t_pipeline")
	if _, err := db.Exec(`CREATE TABLE pl (rid INTEGER, flag INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO pl VALUES (1, 9), (2, 9), (3, 9), (4, 9)`); err != nil {
		t.Fatal(err)
	}
	script := `UPDATE pl SET flag = 0;
UPDATE pl SET flag = 1 WHERE rid >= ?;
UPDATE pl SET flag = 2 WHERE rid <= ?`
	res, err := db.Exec(script, int64(3), int64(1))
	if err != nil {
		t.Fatal(err)
	}
	// 4 reset + 2 high-slice + 1 low-slice rows affected in total.
	if n, _ := res.RowsAffected(); n != 7 {
		t.Errorf("pipelined script affected %d rows, want 7", n)
	}
	rows, err := db.Query(`SELECT flag FROM pl ORDER BY rid`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int64
	for rows.Next() {
		var f int64
		if err := rows.Scan(&f); err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	want := []int64{2, 0, 1, 1}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("flags after pipeline: %v, want %v", got, want)
		}
	}
	// And the prepared form reuses one handle for the whole script.
	stmt, err := db.Prepare(script)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if _, err := stmt.Exec(int64(2), int64(2)); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	db := open(t, "t_err")
	if _, err := db.Query(`SELECT * FROM missing`); err == nil {
		t.Error("query on missing table must fail")
	}
	if _, err := db.Exec(`THIS IS NOT SQL`); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := db.Query(`DELETE FROM missing`); err == nil {
		t.Error("Query with non-SELECT must fail")
	}
}

func TestValueConversions(t *testing.T) {
	// Exercise fromValue kinds directly.
	if fromValue(relation.Null()) != nil {
		t.Error("null conversion")
	}
	if fromValue(relation.Int(3)) != int64(3) {
		t.Error("int conversion")
	}
	if fromValue(relation.Float(2.5)) != 2.5 {
		t.Error("float conversion")
	}
	if fromValue(relation.Bool(true)) != true {
		t.Error("bool conversion")
	}
	if fromValue(relation.Text("s")) != "s" {
		t.Error("text conversion")
	}
}

// TestDurableDSNRoundTrip drives the wal= DSN grammar end to end: a
// durable engine persists through Unregister (which closes it) and a
// reopen of the same DSN recovers the data from the WAL directory.
func TestDurableDSNRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dsn := "t_durable?wal=" + dir + "&fsync=batched&fsync_every=2&checkpoint=4096"
	db := open(t, dsn)
	if _, err := db.Exec(`CREATE TABLE kv (k TEXT, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES ('a', 1), ('b', 2)`); err != nil {
		t.Fatal(err)
	}
	db.Close()
	Unregister(dsn)

	db2 := open(t, dsn)
	defer Unregister(dsn)
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d rows, want 2", n)
	}
	if !Engine(dsn).Durable() {
		t.Error("engine behind a wal= DSN must report durable")
	}
}

// TestDSNOptionErrors pins the option grammar's failure modes: they
// must surface from OpenEngine (and database/sql's first use), not
// silently select a volatile engine.
func TestDSNOptionErrors(t *testing.T) {
	for _, dsn := range []string{
		"bad?fsync=always",         // durability options without wal=
		"bad?wal=/w&fsync=umm",     // unknown policy
		"bad?wal=/w&fsync_every=0", // not a positive integer
		"bad?wal=/w&checkpoint=-1", // negative byte count
		"bad?wal=/w&nope=1",        // unknown option
	} {
		if _, err := OpenEngine(dsn); err == nil {
			t.Errorf("OpenEngine(%q) succeeded, want option error", dsn)
			Unregister(dsn)
		}
	}
}
