#!/usr/bin/env bash
# Server smoke: boot ecfdserver on a private port, drive a short
# closed-loop check load with ecfdloadgen, gate on the ROADMAP's
# >=500 QPS floor, and leave server_load.json for the CI artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18321}
DURATION=${DURATION:-8s}
CLIENTS=${CLIENTS:-8}
ROWS=${ROWS:-10000}
MIN_QPS=${MIN_QPS:-500}

go build -o /tmp/ecfdserver ./cmd/ecfdserver
go build -o /tmp/ecfdloadgen ./cmd/ecfdloadgen

/tmp/ecfdserver -addr "$ADDR" &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT

/tmp/ecfdloadgen -addr "http://$ADDR" -clients "$CLIENTS" -duration "$DURATION" \
  -rows "$ROWS" -mode check -json server_load.json | tee server_load.txt

QPS=$(sed -n 's/^qps=\([0-9.]*\) .*/\1/p' server_load.txt)
if ! awk -v qps="$QPS" -v min="$MIN_QPS" 'BEGIN { exit !(qps >= min) }'; then
  echo "serversmoke: FAIL — $QPS QPS below the $MIN_QPS floor" >&2
  exit 1
fi
echo "serversmoke: OK — $QPS QPS (floor $MIN_QPS)"
